"""SPMD execution of rank programs on threads.

:func:`run_spmd` launches ``nprocs`` threads, each running the same
function with its own :class:`~repro.mpi.comm.Communicator`.  Messages
travel through an in-process mailbox router; a receive blocks (with an
abort check) until the matching message arrives.  Threads are not a
performance device here — the host has one core — they only provide MPI's
blocking-receive control flow; modeled speedups come from the logical
clocks, not from wall time.

Failure semantics: if any rank raises, the run aborts — pending and
future receives in other ranks raise :class:`RankError` so no thread
hangs — and the originating rank's exception is re-raised (wrapped) to
the caller.  A receive that waits longer than ``deadlock_timeout`` real
seconds raises :class:`DeadlockError` (wildcard-free matching means a
genuinely missing message is a program bug, not a race).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.mpi.comm import Communicator
from repro.perfmodel.clock import LogicalClock
from repro.perfmodel.machine import MachineModel


class RankError(RuntimeError):
    """A rank program raised; carries the failing rank."""

    def __init__(self, rank: int, original: BaseException) -> None:
        super().__init__(f"rank {rank} failed: {original!r}")
        self.rank = rank
        self.original = original


class DeadlockError(RuntimeError):
    """A receive waited past the deadlock timeout."""


class _MailboxRouter:
    """Shared mailbox state for one SPMD run.

    One lock guards all mailboxes, but each destination rank waits on its
    own condition variable, so a delivery wakes only the addressee instead
    of every blocked rank (``notify_all`` on a single shared condition
    made every message an all-rank wakeup — quadratic scheduler churn at
    high rank counts).  Deadlock detection uses a ``time.monotonic()``
    deadline: only real elapsed time counts, never the number of times the
    wait happened to wake.
    """

    def __init__(self, size: int) -> None:
        self.size = size
        self._lock = threading.Lock()
        self._conds = [threading.Condition(self._lock) for _ in range(size)]
        # mailbox[dest][(src, tag)] -> deque of (obj, timestamp, nbytes)
        self._boxes: List[Dict[Tuple[int, int], deque]] = [dict() for _ in range(size)]
        self.aborted: Optional[RankError] = None
        #: total messages and bytes, for reporting
        self.message_count = 0
        self.byte_count = 0

    def deliver(
        self, src: int, dest: int, tag: int, obj: Any, timestamp: Optional[float], nbytes: int
    ) -> None:
        with self._lock:
            if self.aborted is not None:
                raise self.aborted
            self._boxes[dest].setdefault((src, tag), deque()).append(
                (obj, timestamp, nbytes)
            )
            self.message_count += 1
            self.byte_count += nbytes
            self._conds[dest].notify()

    def collect(
        self, dest: int, src: int, tag: int, timeout: float = 60.0
    ) -> Tuple[Any, Optional[float], int]:
        key = (src, tag)
        cond = self._conds[dest]
        deadline: Optional[float] = None
        with self._lock:
            while True:
                if self.aborted is not None:
                    raise self.aborted
                q = self._boxes[dest].get(key)
                if q:
                    item = q.popleft()
                    if not q:
                        del self._boxes[dest][key]
                    return item
                now = time.monotonic()
                if deadline is None:
                    deadline = now + timeout
                remaining = deadline - now
                if remaining <= 0:
                    raise DeadlockError(
                        f"rank {dest} waited {timeout}s for message from "
                        f"rank {src} tag {tag}"
                    )
                cond.wait(timeout=remaining)

    def abort(self, err: RankError) -> None:
        with self._lock:
            if self.aborted is None:
                self.aborted = err
            for cond in self._conds:
                cond.notify_all()


@dataclass(slots=True)
class SpmdResult:
    """Everything :func:`run_spmd` returns."""

    values: List[Any]
    clocks: List[Optional[LogicalClock]]
    message_count: int = 0
    byte_count: int = 0

    @property
    def rank_times(self) -> List[float]:
        """Per-rank final clock times (zeros without a machine model)."""
        return [c.time if c is not None else 0.0 for c in self.clocks]

    @property
    def elapsed(self) -> float:
        """Modeled parallel runtime (max over rank clocks)."""
        times = self.rank_times
        return max(times) if times else 0.0


def run_spmd(
    nprocs: int,
    fn: Callable[..., Any],
    args: Sequence[Any] = (),
    kwargs: Optional[Dict[str, Any]] = None,
    machine: Optional[MachineModel] = None,
    deadlock_timeout: float = 60.0,
    trace: Optional[Any] = None,
    obs: Optional[Any] = None,
) -> SpmdResult:
    """Run ``fn(comm, *args, **kwargs)`` on ``nprocs`` ranks.

    With a ``machine`` model, each rank gets a logical clock charged by
    both the communicator and any kernels using ``comm.counter``.  A
    :class:`~repro.mpi.trace.TraceRecorder` passed as ``trace`` collects
    one event per message for post-run analysis.  An
    :class:`~repro.obs.tracer.Tracer` passed as ``obs`` wraps each rank
    in a span (with the rank's logical clock bound for simulated
    timestamps) and lets rank programs open step spans via ``comm.obs``.
    """
    from repro.obs.tracer import NULL_TRACER

    if nprocs <= 0:
        raise ValueError("nprocs must be positive")
    kwargs = kwargs or {}
    obs = obs if obs is not None else NULL_TRACER
    router = _MailboxRouter(nprocs)
    clocks: List[Optional[LogicalClock]] = [
        LogicalClock(machine) if machine is not None else None for _ in range(nprocs)
    ]
    values: List[Any] = [None] * nprocs
    errors: List[Optional[RankError]] = [None] * nprocs

    class _BoundRouter:
        """Router view honouring the run's deadlock timeout."""

        def __init__(self, inner: _MailboxRouter) -> None:
            self._inner = inner

        def deliver(self, *a: Any) -> None:
            self._inner.deliver(*a)

        def collect(self, dest: int, src: int, tag: int):
            return self._inner.collect(dest, src, tag, timeout=deadlock_timeout)

    bound = _BoundRouter(router)

    def runner(rank: int) -> None:
        comm = Communicator(rank, nprocs, bound, clocks[rank], trace=trace, obs=obs)
        obs.bind_clock(clocks[rank])
        try:
            with obs.span("rank", rank=rank, nprocs=nprocs):
                values[rank] = fn(comm, *args, **kwargs)
        except RankError as err:  # propagated abort from another rank
            errors[rank] = err
        except BaseException as exc:  # noqa: BLE001 - must not hang siblings
            err = RankError(rank, exc)
            errors[rank] = err
            router.abort(err)
        finally:
            obs.bind_clock(None)

    if nprocs == 1:
        runner(0)
    else:
        threads = [
            threading.Thread(target=runner, args=(r,), name=f"spmd-rank-{r}", daemon=True)
            for r in range(nprocs)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    if router.aborted is not None:
        raise router.aborted
    first_err = next((e for e in errors if e is not None), None)
    if first_err is not None:
        raise first_err

    return SpmdResult(
        values=values,
        clocks=clocks,
        message_count=router.message_count,
        byte_count=router.byte_count,
    )
