"""The SPMD transport registry.

A *transport* is the mechanism that carries rank-to-rank messages under
the :class:`~repro.mpi.comm.Communicator` API.  Two are registered:

* ``inprocess`` — the deterministic reference: all ranks run as threads
  of one process over an in-memory mailbox router
  (:mod:`repro.mpi.runtime`).  Modeled speedups come from the logical
  clocks; wall time means nothing here (the GIL serializes compute).
  This is the default, and the one every test oracle runs on.
* ``multiprocess`` — real parallelism: each rank is an OS process and
  messages travel over pipes (:mod:`repro.mpi.multiproc`), so per-rank
  wall-clock times are *measured* on real cores.  Routing results are
  bit-identical to ``inprocess`` by contract — pickle round-trips
  preserve ints, floats, and numpy arrays exactly — only the measured
  times differ.

Selection precedence mirrors the congestion-backend registry
(:mod:`repro.grid.backends`): explicit argument
(``RouterConfig.transport`` / ``--transport``) > the
:data:`TRANSPORT_ENV` environment variable > the default
(:data:`DEFAULT_TRANSPORT`).  Every transport request resolves through
:func:`resolve_transport_name`, so an unknown name fails fast with the
registered-name list instead of surfacing later inside a spawned run.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Optional, Tuple

#: environment override consulted when no explicit transport is configured
TRANSPORT_ENV = "REPRO_TRANSPORT"

#: transport used when neither an argument nor the environment chooses one
DEFAULT_TRANSPORT = "inprocess"


def _make_inprocess() -> Callable[..., object]:
    from repro.mpi.runtime import run_inprocess

    return run_inprocess


def _make_multiprocess() -> Callable[..., object]:
    from repro.mpi.multiproc import run_multiprocess

    return run_multiprocess


#: the transport registry — THE single source of truth for valid
#: transport names.  Everything that accepts a transport request
#: (RouterConfig validation, ``run_spmd``, the REPRO_TRANSPORT
#: environment variable, the CLI ``--transport`` flag) resolves through
#: :func:`resolve_transport_name`.  Factories import lazily so this
#: module stays importable from :mod:`repro.mpi.runtime` without a cycle.
TRANSPORTS: Dict[str, Callable[[], Callable[..., object]]] = {
    "inprocess": _make_inprocess,
    "multiprocess": _make_multiprocess,
}

#: valid transport names, in registration order
TRANSPORT_NAMES: Tuple[str, ...] = tuple(TRANSPORTS)


def resolve_transport_name(name: Optional[str] = None) -> str:
    """Resolve a transport request to a concrete registry name.

    ``None``/``""``/``"auto"`` consult :data:`TRANSPORT_ENV`, then fall
    back to :data:`DEFAULT_TRANSPORT`; an *empty* environment value also
    falls through to the default.  Any other name must be registered in
    :data:`TRANSPORTS` (case-insensitive) — unknown names raise
    ``ValueError`` naming the registered transports, including names
    smuggled in via the environment variable.
    """
    via_env = None
    if name is None or name in ("", "auto"):
        via_env = os.environ.get(TRANSPORT_ENV, "")
        name = via_env or DEFAULT_TRANSPORT
    name = name.lower()
    if name not in TRANSPORTS:
        source = f"{TRANSPORT_ENV}={via_env!r}" if via_env else f"{name!r}"
        raise ValueError(
            f"unknown SPMD transport {source} (choose from {TRANSPORT_NAMES})"
        )
    return name


def get_transport(name: str) -> Callable[..., object]:
    """The runner implementing the registered transport ``name``.

    Runners share one signature (see
    :func:`repro.mpi.runtime.run_inprocess`): ``(nprocs, fn, args,
    kwargs, machine, deadlock_timeout, trace, obs, faults)`` returning a
    :class:`~repro.mpi.runtime.SpmdResult`.
    """
    try:
        factory = TRANSPORTS[name]
    except KeyError:
        raise ValueError(
            f"unknown SPMD transport {name!r} (choose from {TRANSPORT_NAMES})"
        ) from None
    return factory()


__all__ = [
    "DEFAULT_TRANSPORT",
    "TRANSPORT_ENV",
    "TRANSPORT_NAMES",
    "TRANSPORTS",
    "get_transport",
    "resolve_transport_name",
]
