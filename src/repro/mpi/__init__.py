"""Deterministic in-process message passing with an mpi4py-style surface.

The paper implements its routers on MPI; this host has neither MPI nor
multiple cores, so rank programs here execute as cooperating threads
inside one process.  The semantics mirror MPI where the algorithms need
them — buffered point-to-point sends matched by ``(source, tag)``, and the
standard collectives built from point-to-point trees — and every
communication optionally advances per-rank :class:`~repro.perfmodel.clock.
LogicalClock` objects, which is how modeled speedups arise.

Determinism contract: rank programs in this repository never use
wildcard-source receives, and collectives complete in a fixed message
order, so routing results are bit-identical across runs regardless of
thread scheduling.

Entry point::

    from repro.mpi import run_spmd

    def program(comm):
        data = comm.bcast([1, 2, 3] if comm.rank == 0 else None, root=0)
        return comm.allreduce(comm.rank)

    out = run_spmd(4, program)
    assert out.values == [6, 6, 6, 6]
"""

from repro.mpi.comm import Communicator, ReduceOp, Request, SUM, MAX, MIN, CONCAT
from repro.mpi.runtime import run_spmd, SpmdResult, RankError, DeadlockError
from repro.mpi.sizes import estimate_size
from repro.mpi.trace import TraceEvent, TraceRecorder

__all__ = [
    "Communicator",
    "ReduceOp",
    "SUM",
    "MAX",
    "MIN",
    "CONCAT",
    "Request",
    "run_spmd",
    "SpmdResult",
    "RankError",
    "DeadlockError",
    "estimate_size",
    "TraceEvent",
    "TraceRecorder",
]
