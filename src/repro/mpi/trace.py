"""Message tracing: record what a parallel run communicated, when.

A :class:`TraceRecorder` attached to a run collects one event per
message and collective, in simulated time.  The text timeline renderer
gives a quick visual of communication structure (who talks to whom, how
synchronization phases line up) without any plotting dependency.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One communication event."""

    kind: str  # "send" | "recv" | "collective"
    time: float  # simulated seconds (0.0 when no machine model)
    rank: int
    peer: int  # source/destination rank; -1 for collectives
    tag: int
    nbytes: int
    #: collective operation name ("bcast", "reduce", ...); "" for p2p
    op: str = ""


class TraceRecorder:
    """Collects trace events from a run.

    Rank programs run on concurrent threads and ``list.append`` is *not*
    a documented atomic operation, so :meth:`record` takes a lock — the
    recorder must stay correct no matter how the interpreter schedules
    rank threads.  Point-to-point ``send``/``recv`` events cover all
    traffic (collectives are built from point-to-point messages, so their
    tree edges are recorded too); ``collective`` events additionally mark
    each logical collective operation so analysis can attribute the
    reserved-tag traffic underneath to barrier/bcast/reduce phases.
    """

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []
        self._lock = threading.Lock()

    def record(
        self,
        kind: str,
        time: float,
        rank: int,
        peer: int,
        tag: int,
        nbytes: int,
        op: str = "",
    ) -> None:
        """Append one event (called by the communicator)."""
        event = TraceEvent(kind, time, rank, peer, tag, nbytes, op)
        with self._lock:
            self.events.append(event)

    # -- queries -----------------------------------------------------------

    def for_rank(self, rank: int) -> List[TraceEvent]:
        """One rank's events, time-ordered."""
        return sorted(
            (e for e in self.events if e.rank == rank), key=lambda e: e.time
        )

    def bytes_by_pair(self) -> Dict[tuple, int]:
        """(src, dst) -> bytes sent."""
        out: Dict[tuple, int] = {}
        for e in self.events:
            if e.kind == "send":
                key = (e.rank, e.peer)
                out[key] = out.get(key, 0) + e.nbytes
        return out

    def total_bytes(self) -> int:
        """Bytes sent across the whole run."""
        return sum(e.nbytes for e in self.events if e.kind == "send")

    def total_messages(self) -> int:
        """Messages sent across the whole run.

        Counts every point-to-point send, including the tree edges inside
        collectives (which use reserved negative tags) — barrier/bcast
        traffic is real traffic.
        """
        return sum(1 for e in self.events if e.kind == "send")

    def total_collectives(self) -> int:
        """Logical collective operations across the whole run."""
        return sum(1 for e in self.events if e.kind == "collective")

    def collectives_by_op(self) -> Dict[str, int]:
        """``op name -> count`` of collective operations."""
        out: Dict[str, int] = {}
        for e in self.events:
            if e.kind == "collective":
                out[e.op] = out.get(e.op, 0) + 1
        return out

    # -- rendering ----------------------------------------------------------

    def render_timeline(self, nprocs: int, width: int = 64) -> str:
        """Per-rank send/receive activity over simulated time as text.

        Each rank gets one lane; ``>`` marks a send, ``<`` a receive,
        ``*`` both in the same bucket.
        """
        sends = [e for e in self.events if e.kind == "send"]
        recvs = [e for e in self.events if e.kind == "recv"]
        if not sends and not recvs:
            return "(no traffic)"
        t_max = max(e.time for e in self.events) or 1.0
        lanes = []
        for rank in range(nprocs):
            lane = [" "] * width
            for e in self.events:
                if e.rank != rank or e.kind == "collective":
                    continue
                slot = min(int(e.time / t_max * (width - 1)), width - 1)
                mark = ">" if e.kind == "send" else "<"
                lane[slot] = "*" if lane[slot] not in (" ", mark) else mark
            lanes.append(f"rank {rank:>2} |{''.join(lane)}|")
        header = f"comm timeline (0 .. {t_max:.4f}s, '>' send, '<' recv)"
        return "\n".join([header] + lanes)

    def render_matrix(self, nprocs: int) -> str:
        """Bytes-sent matrix (src rows, dst columns)."""
        pairs = self.bytes_by_pair()
        widths = max(8, max((len(f"{v:,}") for v in pairs.values()), default=8))
        lines = ["bytes sent (row = source, column = destination)"]
        head = "        " + " ".join(f"r{d:<{widths - 1}}" for d in range(nprocs))
        lines.append(head)
        for s in range(nprocs):
            cells = " ".join(
                f"{pairs.get((s, d), 0):>{widths},}" for d in range(nprocs)
            )
            lines.append(f"rank {s:>2} {cells}")
        return "\n".join(lines)
