"""The communicator: point-to-point and collective operations.

Point-to-point sends are buffered (MPI "eager" mode): ``send`` never
blocks, ``recv`` blocks until a message matching ``(source, tag)`` is
available.  Collectives are built from point-to-point messages —
binomial trees for broadcast/reduce, flat fan-in for gather — so their
modeled cost scales the way a real MPI implementation's would
(:math:`O(\\log p)` latency terms for trees, :math:`O(p)` for fan-ins).

Tag discipline: user tags must be non-negative; collectives use a
reserved negative tag space keyed by a per-rank collective sequence
number.  Rank programs call collectives in the same order on every rank
(SPMD), so sequence numbers agree without any central coordination.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence

from repro.faults.plan import NULL_FAULT_PLAN
from repro.mpi.sizes import estimate_size
from repro.perfmodel.clock import LogicalClock


@dataclass(frozen=True, slots=True)
class ReduceOp:
    """A named, associative reduction operator."""

    name: str
    fn: Callable[[Any, Any], Any]

    def __call__(self, a: Any, b: Any) -> Any:
        return self.fn(a, b)


SUM = ReduceOp("sum", lambda a, b: a + b)
MAX = ReduceOp("max", lambda a, b: a if a >= b else b)
MIN = ReduceOp("min", lambda a, b: a if a <= b else b)
CONCAT = ReduceOp("concat", lambda a, b: list(a) + list(b))


#: internal sentinel a poll hook returns while its operation is pending
_PENDING = object()


class Request:
    """Handle for a non-blocking operation.

    Sends are buffered, so an isend's request is complete at creation.
    An irecv's request completes either on :meth:`wait` (the matching
    blocking receive) or on :meth:`test`, which — MPI ``MPI_Test``
    semantics — polls the mailbox non-blockingly and completes the
    request when the matching message has already been delivered.
    A ``test()`` loop therefore makes progress without ever calling
    ``wait()`` (it used to return a stale ``False`` forever).
    """

    __slots__ = ("_resolve", "_poll", "_done", "_value")

    def __init__(
        self,
        resolve: Optional[Callable[[], Any]] = None,
        value: Any = None,
        poll: Optional[Callable[[], Any]] = None,
    ) -> None:
        self._resolve = resolve
        self._poll = poll
        self._done = resolve is None
        self._value = value

    def test(self) -> bool:
        """True once the operation has completed.

        For a pending receive this attempts completion: if the matching
        message is already in the mailbox it is consumed (with the same
        clock/trace accounting as a blocking receive) and the request
        becomes complete; otherwise the request stays pending.
        """
        if self._done:
            return True
        if self._poll is not None:
            out = self._poll()
            if out is not _PENDING:
                self._value = out
                self._done = True
        return self._done

    def wait(self) -> Any:
        """Complete the operation; returns the payload for receives."""
        if not self._done:
            self._value = self._resolve()  # type: ignore[misc]
            self._done = True
        return self._value


class Communicator:
    """One rank's endpoint in an SPMD run.

    Created by :func:`repro.mpi.runtime.run_spmd`; rank programs receive
    it as their first argument.  When a machine model was supplied the
    communicator carries a :class:`LogicalClock` which also serves as the
    rank's work counter (``comm.counter``).
    """

    def __init__(
        self,
        rank: int,
        size: int,
        router: "object",
        clock: Optional[LogicalClock],
        trace: Optional["object"] = None,
        obs: Optional["object"] = None,
        faults: Optional["object"] = None,
    ) -> None:
        from repro.obs.tracer import NULL_TRACER

        self.rank = rank
        self.size = size
        self._router = router
        self.clock = clock
        self.trace = trace
        #: span tracer (``repro.obs``); rank programs use it for step spans
        #: and the communicator attributes message counts/bytes to the
        #: currently open span — the per-phase communication breakdown.
        self.obs = obs if obs is not None else NULL_TRACER
        #: fault plan consulted on every send (injected link delays)
        self._faults = faults if faults is not None else NULL_FAULT_PLAN
        self._coll_seq = 0

    # ------------------------------------------------------------------
    @property
    def counter(self):
        """Work counter for router kernels (the clock, or a no-op)."""
        if self.clock is not None:
            return self.clock
        from repro.perfmodel.counter import NULL_COUNTER

        return NULL_COUNTER

    def _check_peer(self, peer: int) -> None:
        if not 0 <= peer < self.size:
            raise ValueError(f"peer {peer} out of range for size {self.size}")

    # -- point-to-point -------------------------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Buffered send (never blocks)."""
        self._check_peer(dest)
        if tag < 0:
            raise ValueError("negative tags are reserved for collectives")
        self._post(obj, dest, tag)

    def recv(self, source: int, tag: int = 0) -> Any:
        """Blocking receive matched by exact ``(source, tag)``."""
        self._check_peer(source)
        if tag < 0:
            raise ValueError("negative tags are reserved for collectives")
        return self._fetch(source, tag)

    def sendrecv(self, obj: Any, peer: int, tag: int = 0) -> Any:
        """Exchange with ``peer``: send ``obj``, return their object.

        Safe against deadlock because sends are buffered.
        """
        self.send(obj, peer, tag)
        return self.recv(peer, tag)

    def isend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        """Non-blocking send: buffered, so complete immediately."""
        self.send(obj, dest, tag)
        return Request()

    def irecv(self, source: int, tag: int = 0) -> Request:
        """Non-blocking receive.

        ``wait()`` performs the matching blocking receive; ``test()``
        polls the mailbox and completes the request as soon as the
        matching message has been delivered (``MPI_Test`` semantics).
        """
        self._check_peer(source)
        if tag < 0:
            raise ValueError("negative tags are reserved for collectives")
        try_collect = getattr(self._router, "try_collect", None)
        poll: Optional[Callable[[], Any]] = None
        if try_collect is not None:
            def poll() -> Any:
                item = try_collect(self.rank, source, tag)
                if item is None:
                    return _PENDING
                return self._account_recv(item, source, tag)[0]
        return Request(resolve=lambda: self._fetch(source, tag), poll=poll)

    # -- internals shared with collectives --------------------------------
    def _post(self, obj: Any, dest: int, tag: int, nbytes: Optional[int] = None) -> None:
        if nbytes is None:
            nbytes = estimate_size(obj)
        timestamp = None
        if self._faults is not NULL_FAULT_PLAN:
            extra = self._faults.send_delay(self.rank, dest, tag, nbytes)
            if extra > 0.0 and self.clock is not None:
                self.clock.charge_comm(extra)  # injected link delay
        if self.clock is not None:
            cost = self.clock.machine.msg_seconds(nbytes)
            self.clock.charge_comm(cost)
            timestamp = self.clock.time
        if self.trace is not None:
            self.trace.record(
                "send", timestamp or 0.0, self.rank, dest, tag, nbytes
            )
        self.obs.add_metric("msg.sent", 1)
        self.obs.add_metric("msg.bytes", nbytes)
        self._router.deliver(self.rank, dest, tag, obj, timestamp, nbytes)

    def _fetch(self, source: int, tag: int) -> Any:
        return self._fetch_sized(source, tag)[0]

    def _fetch_sized(self, source: int, tag: int) -> "tuple[Any, int]":
        """Receive and also return the message's wire-size estimate, so
        forwarding collectives (bcast) can reuse it instead of
        re-estimating the identical payload."""
        item = self._router.collect(self.rank, source, tag)
        return self._account_recv(item, source, tag)

    def _account_recv(
        self, item: "tuple[Any, Optional[float], int]", source: int, tag: int
    ) -> "tuple[Any, int]":
        """Clock/trace bookkeeping shared by blocking and polled receives."""
        obj, timestamp, nbytes = item
        if self.clock is not None:
            if timestamp is not None:
                self.clock.wait_until(timestamp)
            # receive-side software overhead
            self.clock.charge_comm(self.clock.machine.latency_s * 0.5)
        if self.trace is not None:
            self.trace.record(
                "recv",
                self.clock.time if self.clock is not None else 0.0,
                self.rank, source, tag, nbytes,
            )
        return obj, nbytes

    def _coll_tag(self) -> int:
        """Fresh reserved tag for the next collective (SPMD order)."""
        self._coll_seq += 1
        return -self._coll_seq

    def _overhead(self) -> None:
        if self.clock is not None:
            self.clock.charge_comm(self.clock.machine.collective_overhead_s)

    def _coll_begin(self, op: str) -> int:
        """Common prologue of every primitive collective: reserve the tag,
        charge the fixed overhead, and record the logical operation (the
        tree-edge messages underneath are recorded individually by
        ``_post``/``_fetch``)."""
        tag = self._coll_tag()
        self._overhead()
        if self.trace is not None:
            self.trace.record(
                "collective",
                self.clock.time if self.clock is not None else 0.0,
                self.rank, -1, tag, 0, op=op,
            )
        self.obs.add_metric(f"coll.{op}", 1)
        return tag

    # -- collectives --------------------------------------------------------
    def barrier(self) -> None:
        """Synchronize all ranks (and their logical clocks)."""
        self.allreduce(0, SUM)

    def bcast(self, obj: Any, root: int = 0) -> Any:
        """Broadcast ``obj`` from ``root`` via a binomial tree."""
        self._check_peer(root)
        tag = self._coll_begin("bcast")
        vrank = (self.rank - root) % self.size
        # The identical payload travels every tree edge, so its size
        # estimate is computed once (at the root) or taken from the
        # incoming message — never re-derived per forwarded copy.
        nbytes: Optional[int] = None
        mask = 1
        while mask < self.size:
            if vrank & mask:
                src = (self.rank - mask) % self.size
                obj, nbytes = self._fetch_sized(src, tag)
                break
            mask <<= 1
        mask >>= 1
        while mask > 0:
            if vrank + mask < self.size:
                dest = (self.rank + mask) % self.size
                if nbytes is None:
                    nbytes = estimate_size(obj)
                self._post(obj, dest, tag, nbytes=nbytes)
            mask >>= 1
        return obj

    def gather(self, obj: Any, root: int = 0) -> Optional[List[Any]]:
        """Gather one object per rank to ``root`` (flat fan-in).

        Returns the rank-ordered list at root, ``None`` elsewhere.
        """
        self._check_peer(root)
        tag = self._coll_begin("gather")
        if self.rank == root:
            out: List[Any] = []
            for r in range(self.size):
                out.append(obj if r == root else self._fetch(r, tag))
            return out
        self._post(obj, root, tag)
        return None

    def scatter(self, objs: Optional[Sequence[Any]], root: int = 0) -> Any:
        """Scatter one object to each rank from ``root``."""
        self._check_peer(root)
        tag = self._coll_begin("scatter")
        if self.rank == root:
            if objs is None or len(objs) != self.size:
                raise ValueError("scatter root needs exactly one object per rank")
            for r in range(self.size):
                if r != root:
                    self._post(objs[r], r, tag)
            return objs[root]
        return self._fetch(root, tag)

    def allgather(self, obj: Any) -> List[Any]:
        """Gather to rank 0, then broadcast the full list."""
        gathered = self.gather(obj, root=0)
        return self.bcast(gathered, root=0)

    def reduce(self, obj: Any, op: ReduceOp = SUM, root: int = 0) -> Optional[Any]:
        """Tree reduction to ``root`` (associative ``op``, fixed order).

        The combine order is the binomial-tree order, identical on every
        run, so even non-commutative-looking payloads reduce
        deterministically.
        """
        self._check_peer(root)
        tag = self._coll_begin("reduce")
        vrank = (self.rank - root) % self.size
        acc = obj
        mask = 1
        while mask < self.size:
            if vrank & mask:
                dest = (self.rank - mask) % self.size
                self._post(acc, dest, tag)
                break
            partner = vrank | mask
            if partner < self.size:
                src = (self.rank + mask) % self.size
                other = self._fetch(src, tag)
                if self.clock is not None:
                    self.clock.charge_comm(
                        self.clock.machine.collective_overhead_s
                    )  # combine cost
                acc = op(acc, other)
            mask <<= 1
        return acc if self.rank == root else None

    def allreduce(self, obj: Any, op: ReduceOp = SUM) -> Any:
        """Reduce to rank 0 then broadcast the result."""
        acc = self.reduce(obj, op, root=0)
        return self.bcast(acc, root=0)

    def alltoall(self, objs: Sequence[Any]) -> List[Any]:
        """Personalized all-to-all: ``objs[r]`` goes to rank ``r``.

        Returns the rank-ordered list of objects received.  Implemented as
        ``size - 1`` shifted exchange rounds.
        """
        if len(objs) != self.size:
            raise ValueError("alltoall needs exactly one object per rank")
        tag = self._coll_begin("alltoall")
        out: List[Any] = [None] * self.size
        out[self.rank] = objs[self.rank]
        for shift in range(1, self.size):
            dest = (self.rank + shift) % self.size
            src = (self.rank - shift) % self.size
            self._post(objs[dest], dest, tag)
            out[src] = self._fetch(src, tag)
        return out
