"""The ``multiprocess`` SPMD transport: one OS process per rank.

Each rank runs in its own process with a private mailbox; messages
travel over simplex OS pipes (one per directed rank pair), serialized
with pickle — which round-trips ints, floats, and numpy arrays
bit-exactly, so routing results are identical to the in-process
transport by construction.  What this transport adds is *measured*
wall-clock time on real cores: every rank reports its own
``time.perf_counter`` interval, and the parent measures the whole
parallel section including process startup (that cost is real; hiding
it would flatter the speedup).

Semantics parity with :func:`~repro.mpi.runtime.run_inprocess`:

* **Matching** — per-``(src, tag)`` FIFO, wildcard-free, MPI_Test-style
  polling via ``try_collect``.  Pipes preserve per-sender order and each
  rank drains its inbound pipes into a local mailbox, so non-overtaking
  holds exactly as it does in the shared-mailbox router.
* **Faults** — the seeded :class:`~repro.faults.plan.FaultPlan` is
  reconstructed inside every rank process from ``(seed, fault specs)``.
  Since every injection decision is a pure function of ``(seed, rank,
  rank's own event index)``, the per-rank schedules are bit-identical to
  the in-process run; reorder holds are chosen on the *sender* and
  shipped with the message, then applied against the receiver's arrival
  sequence.  Fired-injection logs are shipped back and merged into the
  caller's plan so replay comparisons see one coherent record.
* **Failure containment** — a crashing rank broadcasts an abort marker
  on every outbound pipe before reporting to the parent; peers raise
  :class:`~repro.mpi.runtime.RankError` out of their blocking calls, and
  the parent assembles the same structured
  :class:`~repro.faults.report.RunFailure` post-mortem (origin rank,
  step span, per-rank outcomes, undelivered user messages) that the
  in-process transport produces.  A rank that dies without reporting is
  recorded as ``ProcessExit``; a rank waiting on a peer that already
  exited fails fast with :class:`~repro.mpi.runtime.DeadlockError`
  instead of burning the full timeout.
* **Observability** — per-rank span trees, trace events, logical-clock
  state, and message/byte totals are shipped back and merged, so
  profiles and ``repro trace`` output look the same regardless of
  transport (child-process metrics counters are the one loss: they live
  in the child's registry and are not merged).

Outbound sends go through a per-rank sender thread with an unbounded
queue, so a full pipe buffer can never deadlock two ranks that are both
mid-send (the classic eager-protocol cycle); the main thread keeps
draining its inbound pipes whenever it blocks in ``collect``.
"""

from __future__ import annotations

import multiprocessing as mp
import queue
import threading
import time
from collections import deque
from multiprocessing.connection import Connection, wait as _conn_wait
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.faults.plan import FaultPlan, InjectedFault, NULL_FAULT_PLAN
from repro.faults.report import RankFailure, RunFailure
from repro.mpi.comm import Communicator
from repro.mpi.runtime import DeadlockError, RankError, SpmdResult, _RankObs
from repro.perfmodel.clock import LogicalClock
from repro.perfmodel.machine import MachineModel

#: extra real seconds the parent waits past the rank deadlock timeout
#: before declaring unreported ranks dead
_PARENT_GRACE_S = 60.0

#: how long a finishing rank waits for its sender thread to flush
_SENDER_FLUSH_S = 10.0


def _pick_context() -> mp.context.BaseContext:
    # fork is strongly preferred: no re-import, closures and fault plans
    # travel for free, and startup is milliseconds not seconds.  spawn
    # (macOS/Windows default) still works for module-level rank programs.
    methods = mp.get_all_start_methods()
    return mp.get_context("fork" if "fork" in methods else "spawn")


class _Sender(threading.Thread):
    """Flushes outbound messages so pipe backpressure cannot deadlock.

    ``Connection.send`` blocks once the pipe buffer fills; if two ranks
    block sending to each other neither ever drains, which is exactly
    the cyclic-buffer deadlock MPI's rendezvous protocol exists to
    avoid.  Queueing sends through one thread keeps the rank's main
    thread free to drain its own inbound pipes, so the cycle cannot
    close.
    """

    def __init__(self, rank: int, writers: Dict[int, Connection]) -> None:
        super().__init__(name=f"spmd-sender-{rank}", daemon=True)
        self._q: "queue.Queue[Optional[Tuple[int, Any]]]" = queue.Queue()
        self._writers = writers

    def post(self, dest: int, payload: Any) -> None:
        self._q.put((dest, payload))

    def run(self) -> None:
        while True:
            item = self._q.get()
            if item is None:
                return
            dest, payload = item
            conn = self._writers.get(dest)
            if conn is None:
                continue
            try:
                conn.send(payload)
            except (BrokenPipeError, OSError):
                # peer is gone; its death is reported through the abort
                # / EOF paths, not by crashing the sender
                self._writers.pop(dest, None)

    def stop(self, timeout: float = _SENDER_FLUSH_S) -> None:
        self._q.put(None)
        self.join(timeout)


class _PipeRouter:
    """One rank's router: pipe channels behind the mailbox interface.

    Implements the same ``deliver`` / ``collect`` / ``try_collect``
    surface as the in-process ``_MailboxRouter``, including held-message
    (reorder-fault) bookkeeping — but all state is private to the rank's
    main thread, so no locks are needed on the receive path.
    """

    def __init__(
        self,
        rank: int,
        nprocs: int,
        writers: Dict[int, Connection],
        readers: Dict[int, Connection],
        faults: Any,
        deadlock_timeout: float,
    ) -> None:
        self._rank = rank
        self._nprocs = nprocs
        self._faults = faults
        self._timeout = deadlock_timeout
        self._readers = dict(readers)
        self._src_of = {conn: src for src, conn in self._readers.items()}
        self._sender = _Sender(rank, writers)
        self._sender.start()
        # mailbox[(src, tag)] -> deque of (obj, timestamp, nbytes)
        self._boxes: Dict[Tuple[int, int], deque] = {}
        # held reorder-fault messages: [release_seq, (src, tag), item]
        self._held: List[list] = []
        self._seq = 0
        self._eof: set = set()
        self.aborted: Optional[RankError] = None
        self.message_count = 0
        self.byte_count = 0

    # -- held-message bookkeeping (mirrors _MailboxRouter) ---------------
    def _release_held(
        self, key: Optional[Tuple[int, int]] = None,
        due_seq: Optional[int] = None,
    ) -> None:
        if not self._held:
            return
        keep: List[list] = []
        for entry in self._held:
            release_seq, ekey, item = entry
            if (key is not None and ekey == key) or (
                due_seq is not None and release_seq <= due_seq
            ):
                self._boxes.setdefault(ekey, deque()).append(item)
            else:
                keep.append(entry)
        self._held = keep

    def _pending_keys(self, user_only: bool = False) -> List[Tuple[int, int]]:
        keys = [k for k, q in self._boxes.items() if q]
        keys += [entry[1] for entry in self._held]
        if user_only:
            keys = [k for k in keys if k[1] >= 0]
        return sorted(set(keys))

    # -- inbound ---------------------------------------------------------
    def _ingest(
        self, src: int, tag: int, obj: Any, timestamp: Optional[float],
        nbytes: int, hold: int,
    ) -> None:
        self._seq += 1
        seq = self._seq
        key = (src, tag)
        if self._held:
            # non-overtaking: a same-key arrival flushes held ones first
            self._release_held(key=key)
        if hold > 0:
            self._held.append([seq + hold, key, (obj, timestamp, nbytes)])
            self._release_held(due_seq=seq)
            return
        if self._held:
            self._release_held(due_seq=seq)
        self._boxes.setdefault(key, deque()).append((obj, timestamp, nbytes))

    def _handle(self, msg: Tuple[Any, ...]) -> None:
        if msg[0] == "m":
            _, src, tag, obj, timestamp, nbytes, hold = msg
            self._ingest(src, tag, obj, timestamp, nbytes, hold)
        else:  # ("a", origin_rank, errinfo)
            _, origin, errinfo = msg
            if self.aborted is None:
                if errinfo.get("injected"):
                    original: BaseException = InjectedFault(
                        errinfo.get("message", "injected fault"),
                        rank=origin, step=errinfo.get("step"),
                    )
                else:
                    original = RuntimeError(
                        f"{errinfo.get('error_type', 'RuntimeError')}: "
                        f"{errinfo.get('message', '')}"
                    )
                self.aborted = RankError(origin, original)

    def _drain(self, timeout: float) -> None:
        conns = list(self._readers.values())
        if not conns:
            if timeout > 0:
                time.sleep(min(timeout, 0.05))
            return
        try:
            ready = _conn_wait(conns, timeout)
        except OSError:
            ready = []
        for conn in ready:
            src = self._src_of.get(conn)
            while True:
                try:
                    if not conn.poll(0):
                        break
                    msg = conn.recv()
                except (EOFError, OSError):
                    # peer exited; all its data was drained before EOF
                    if src is not None:
                        self._eof.add(src)
                        self._readers.pop(src, None)
                    self._src_of.pop(conn, None)
                    conn.close()
                    break
                self._handle(msg)

    # -- mailbox interface (used by the Communicator) --------------------
    def deliver(
        self, src: int, dest: int, tag: int, obj: Any,
        timestamp: Optional[float], nbytes: int,
    ) -> None:
        self._drain(0.0)  # notice aborts promptly, even on send-heavy paths
        if self.aborted is not None:
            raise self.aborted
        self.message_count += 1
        self.byte_count += nbytes
        hold = 0
        if self._faults is not NULL_FAULT_PLAN:
            # chosen from the sender's stream (scheduling-independent)
            # and shipped with the message for the receiver to apply
            hold = self._faults.deliver_hold(src, dest, tag)
        if dest == self._rank:
            self._ingest(src, tag, obj, timestamp, nbytes, hold)
        else:
            self._sender.post(dest, ("m", src, tag, obj, timestamp, nbytes, hold))

    def collect(
        self, dest: int, src: int, tag: int
    ) -> Tuple[Any, Optional[float], int]:
        key = (src, tag)
        deadline: Optional[float] = None
        start: Optional[float] = None
        while True:
            if self.aborted is not None:
                raise self.aborted
            if self._held:
                # a receiver asking for a held message gets it now:
                # injected reordering must never deadlock the run
                self._release_held(key=key)
            q = self._boxes.get(key)
            if q:
                item = q.popleft()
                if not q:
                    del self._boxes[key]
                return item
            now = time.monotonic()
            if deadline is None:
                start = now
                deadline = now + self._timeout
            if src in self._eof and src != self._rank:
                # the sender already exited and everything it wrote has
                # been drained — this message can never arrive
                elapsed = now - (start if start is not None else now)
                pending = self._pending_keys()
                pretty = (
                    ", ".join(f"(src={s}, tag={t})" for s, t in pending)
                    or "none"
                )
                raise DeadlockError(
                    f"rank {dest} waiting for message from rank {src} tag "
                    f"{tag}, but that rank has exited; undelivered in its "
                    f"mailbox: {pretty}",
                    elapsed_s=elapsed,
                    pending=pending,
                )
            remaining = deadline - now
            if remaining <= 0:
                elapsed = now - (start if start is not None else now)
                pending = self._pending_keys()
                pretty = (
                    ", ".join(f"(src={s}, tag={t})" for s, t in pending)
                    or "none"
                )
                raise DeadlockError(
                    f"rank {dest} waited {elapsed:.2f}s (timeout "
                    f"{self._timeout}s) for message from rank {src} tag "
                    f"{tag}; undelivered in its mailbox: {pretty}",
                    elapsed_s=elapsed,
                    pending=pending,
                )
            self._drain(min(remaining, 0.25))

    def try_collect(
        self, dest: int, src: int, tag: int
    ) -> Optional[Tuple[Any, Optional[float], int]]:
        self._drain(0.0)
        if self.aborted is not None:
            raise self.aborted
        key = (src, tag)
        if self._held:
            self._release_held(key=key)
        q = self._boxes.get(key)
        if not q:
            return None
        item = q.popleft()
        if not q:
            del self._boxes[key]
        return item

    # -- teardown --------------------------------------------------------
    def broadcast_abort(self, origin: int, errinfo: Dict[str, Any]) -> None:
        for dest in range(self._nprocs):
            if dest != self._rank:
                self._sender.post(dest, ("a", origin, errinfo))

    def shutdown(self) -> None:
        self._sender.stop()


def _rebuild_faults(plan_spec: Any, nprocs: int) -> Any:
    if plan_spec is None:
        return NULL_FAULT_PLAN
    kind, *rest = plan_spec
    if kind == "spec":
        seed, fault_specs = rest
        faults = FaultPlan(seed, fault_specs)
    else:  # "pickle": an arbitrary plan-like object shipped whole
        (faults,) = rest
    faults.begin_run(nprocs)
    return faults


def _child_main(
    rank: int,
    nprocs: int,
    fn: Callable[..., Any],
    args: Tuple[Any, ...],
    kwargs: Dict[str, Any],
    machine: Optional[MachineModel],
    deadlock_timeout: float,
    want_trace: bool,
    want_obs: bool,
    plan_spec: Any,
    msg_pipes: Dict[Tuple[int, int], Tuple[Connection, Connection]],
    res_pipes: Dict[int, Tuple[Connection, Connection]],
) -> None:
    """Entry point of one rank process."""
    from repro.mpi.trace import TraceRecorder
    from repro.obs.tracer import NULL_TRACER, Tracer

    # keep only this rank's channel ends; close every inherited copy so
    # peer EOFs are observable (an fd held open here would mask them)
    writers: Dict[int, Connection] = {}
    readers: Dict[int, Connection] = {}
    for (s, d), (rconn, wconn) in msg_pipes.items():
        if s == rank:
            writers[d] = wconn
            rconn.close()
        elif d == rank:
            readers[s] = rconn
            wconn.close()
        else:
            rconn.close()
            wconn.close()
    result_conn: Optional[Connection] = None
    for r, (rres, wres) in res_pipes.items():
        if r == rank:
            result_conn = wres
            rres.close()
        else:
            rres.close()
            wres.close()
    assert result_conn is not None

    faults = _rebuild_faults(plan_spec, nprocs)
    clock = LogicalClock(machine) if machine is not None else None
    if clock is not None and faults is not NULL_FAULT_PLAN:
        clock.slowdown = faults.compute_factor(rank)
    tracer = Tracer() if want_obs else NULL_TRACER
    robs = _RankObs(tracer, rank, faults)
    recorder = TraceRecorder() if want_trace else None
    router = _PipeRouter(rank, nprocs, writers, readers, faults, deadlock_timeout)
    comm = Communicator(
        rank, nprocs, router, clock, trace=recorder, obs=robs, faults=faults
    )
    robs.bind_clock(clock)

    status = "done"
    value: Any = None
    errinfo: Dict[str, Any] = {}
    t_start = time.perf_counter()
    try:
        with robs.span("rank", rank=rank, nprocs=nprocs):
            value = fn(comm, *args, **kwargs)
    except RankError as err:  # propagated abort from another rank
        status = "aborted"
        errinfo = {"origin": err.rank, "pending": router._pending_keys(user_only=True)}
    except BaseException as exc:  # noqa: BLE001 - must not hang siblings
        status = "error"
        injected = isinstance(exc, InjectedFault)
        step = robs.current_step
        if injected and getattr(exc, "step", None) is not None:
            step = exc.step
        errinfo = {
            "step": step,
            "error_type": type(exc).__name__,
            "message": str(exc),
            "injected": injected,
            "pending": router._pending_keys(user_only=True),
        }
        router.broadcast_abort(rank, errinfo)
    finally:
        measured_s = time.perf_counter() - t_start
        robs.bind_clock(None)
        router.shutdown()  # flush queued sends before reporting

    fired: List[str] = []
    stream = getattr(faults, "_stream", None)
    if stream is not None:
        fired = list(stream(rank).fired)
    report: Dict[str, Any] = {
        "status": status,
        "rank": rank,
        "errinfo": errinfo,
        "measured_s": measured_s,
        "fired": fired,
        "message_count": router.message_count,
        "byte_count": router.byte_count,
        "clock": None,
        "value": value if status == "done" else None,
        "spans": [s.to_dict() for s in tracer.roots] if want_obs else [],
        "trace_events": list(recorder.events) if recorder is not None else [],
    }
    if clock is not None:
        report["clock"] = (
            clock.time, dict(clock.work_units), clock.comm_seconds,
            clock.idle_seconds, clock.slowdown,
        )
    try:
        result_conn.send(report)
    except Exception as exc:  # value not picklable, or parent gone
        try:
            result_conn.send({
                "status": "error",
                "rank": rank,
                "errinfo": {
                    "step": None,
                    "error_type": type(exc).__name__,
                    "message": f"rank result could not be serialized: {exc}",
                    "injected": False,
                    "pending": [],
                },
                "measured_s": measured_s,
                "fired": fired,
                "message_count": router.message_count,
                "byte_count": router.byte_count,
                "clock": None,
                "value": None,
                "spans": [],
                "trace_events": [],
            })
        except Exception:
            pass
    finally:
        result_conn.close()


def _restore_clock(
    machine: Optional[MachineModel], state: Optional[Tuple[Any, ...]]
) -> Optional[LogicalClock]:
    if machine is None or state is None:
        return None
    clock = LogicalClock(machine)
    clock.time, units, clock.comm_seconds, clock.idle_seconds, clock.slowdown = state
    clock.work_units.update(units)
    return clock


def _synthesize_original(errinfo: Dict[str, Any], rank: int) -> BaseException:
    message = errinfo.get("message", "")
    error_type = errinfo.get("error_type", "RuntimeError")
    if errinfo.get("injected"):
        return InjectedFault(message, rank=rank, step=errinfo.get("step"))
    if error_type == "DeadlockError":
        return DeadlockError(message)
    return RuntimeError(f"{error_type}: {message}")


def run_multiprocess(
    nprocs: int,
    fn: Callable[..., Any],
    args: Sequence[Any] = (),
    kwargs: Optional[Dict[str, Any]] = None,
    machine: Optional[MachineModel] = None,
    deadlock_timeout: float = 60.0,
    trace: Optional[Any] = None,
    obs: Optional[Any] = None,
    faults: Optional[Any] = None,
) -> SpmdResult:
    """The ``multiprocess`` transport runner (see module docstring).

    Same signature and contract as
    :func:`~repro.mpi.runtime.run_inprocess`; prefer calling
    :func:`~repro.mpi.runtime.run_spmd` with ``transport`` instead of
    calling either runner directly.
    """
    from repro.obs.metrics import REGISTRY
    from repro.obs.tracer import NULL_TRACER, NullTracer, Span

    if nprocs <= 0:
        raise ValueError("nprocs must be positive")
    kwargs = kwargs or {}
    obs = obs if obs is not None else NULL_TRACER
    faults = faults if faults is not None else NULL_FAULT_PLAN
    faults.begin_run(nprocs)
    if faults is NULL_FAULT_PLAN:
        plan_spec = None
    elif isinstance(faults, FaultPlan):
        plan_spec = ("spec", faults.seed, faults.faults)
    else:
        plan_spec = ("pickle", faults)
    want_obs = not isinstance(obs, NullTracer)
    want_trace = trace is not None

    ctx = _pick_context()
    msg_pipes: Dict[Tuple[int, int], Tuple[Connection, Connection]] = {
        (s, d): ctx.Pipe(duplex=False)
        for s in range(nprocs)
        for d in range(nprocs)
        if s != d
    }
    res_pipes: Dict[int, Tuple[Connection, Connection]] = {
        r: ctx.Pipe(duplex=False) for r in range(nprocs)
    }

    wall_start = time.perf_counter()
    procs: List[mp.process.BaseProcess] = []
    reports: Dict[int, Optional[Dict[str, Any]]] = {}
    # Child lifecycle is try/finally-scoped: a KeyboardInterrupt or any
    # parent-side exception raised between the first start() and the
    # normal join path used to orphan every rank process still running.
    # Children are additionally daemonic (fork-safe here: rank programs
    # spawn threads, never processes), so even a parent hard-kill that
    # skips `finally` cannot leave ranks behind.
    try:
        for rank in range(nprocs):
            p = ctx.Process(
                target=_child_main,
                args=(
                    rank, nprocs, fn, tuple(args), dict(kwargs), machine,
                    deadlock_timeout, want_trace, want_obs, plan_spec,
                    msg_pipes, res_pipes,
                ),
                name=f"spmd-rank-{rank}",
                daemon=True,
            )
            p.start()
            procs.append(p)
        # the children own the channels now; parent copies must close so
        # pipe EOFs propagate when a rank exits
        for rconn, wconn in msg_pipes.values():
            rconn.close()
            wconn.close()
        for _, wres in res_pipes.values():
            wres.close()

        waiting: Dict[Connection, int] = {
            rres: rank for rank, (rres, _) in res_pipes.items()
        }
        hard_deadline = time.monotonic() + deadlock_timeout + _PARENT_GRACE_S
        while waiting and time.monotonic() < hard_deadline:
            ready = _conn_wait(list(waiting), timeout=0.5)
            for conn in ready:
                rank = waiting.pop(conn)
                try:
                    reports[rank] = conn.recv()
                except (EOFError, OSError):
                    reports[rank] = None  # died without reporting
                conn.close()
            for conn in list(waiting):
                rank = waiting[conn]
                if not procs[rank].is_alive() and not conn.poll(0):
                    del waiting[conn]
                    reports[rank] = None
                    conn.close()
        for conn, rank in list(waiting.items()):
            reports[rank] = None  # hung past the parent grace deadline
            conn.close()
        measured_wall_s = time.perf_counter() - wall_start
        for rank, p in enumerate(procs):
            p.join(timeout=5.0)
    finally:
        # no-op on the clean path (every rank already joined); on an
        # interrupted or failing path this reaps all surviving children
        for p in procs:
            if p.is_alive():
                p.terminate()
        for p in procs:
            if p.is_alive():
                p.join(timeout=5.0)
            if p.is_alive():
                p.kill()
                p.join(timeout=1.0)

    # merge shipped fired-injection logs into the caller's plan so chaos
    # replay comparisons and summaries see one coherent record
    stream = getattr(faults, "_stream", None)
    if stream is not None:
        for rank in range(nprocs):
            rep = reports.get(rank)
            if rep is not None:
                stream(rank).fired[:] = rep.get("fired", [])

    failed = {
        rank: rep for rank, rep in reports.items()
        if rep is None or rep["status"] == "error"
    }
    if failed:
        ranks: List[RankFailure] = []
        pending: Dict[int, List[Tuple[int, int]]] = {}
        for rank in range(nprocs):
            rep = reports.get(rank)
            if rep is None:
                exitcode = procs[rank].exitcode
                ranks.append(RankFailure(
                    rank=rank,
                    kind="crashed",
                    error_type="ProcessExit",
                    message=(
                        f"rank {rank} exited without reporting "
                        f"(exitcode {exitcode})"
                    ),
                ))
            elif rep["status"] == "done":
                ranks.append(RankFailure(rank=rank, kind="ok"))
            elif rep["status"] == "error":
                info = rep["errinfo"]
                ranks.append(RankFailure(
                    rank=rank,
                    kind="crashed",
                    step=info.get("step"),
                    error_type=info.get("error_type"),
                    message=info.get("message"),
                    injected=bool(info.get("injected")),
                ))
                keys = [tuple(k) for k in info.get("pending", [])]
                if keys:
                    pending[rank] = keys
            else:  # aborted: released by another rank's failure
                ranks.append(RankFailure(
                    rank=rank, kind="aborted", error_type="RankError"
                ))
        origin_rank = min(failed)
        origin_rec = next(r for r in ranks if r.rank == origin_rank)
        REGISTRY.counter("spmd.failed_runs").inc()
        REGISTRY.counter("spmd.rank_failures").inc(
            sum(1 for r in ranks if r.kind == "crashed")
        )
        origin_rep = reports.get(origin_rank)
        origin_info = origin_rep["errinfo"] if origin_rep is not None else {
            "error_type": "ProcessExit",
            "message": origin_rec.message or "",
            "injected": False,
        }
        failure = RunFailure(
            nprocs=nprocs,
            failed_rank=origin_rank,
            step=origin_rec.step,
            error_type=origin_rec.error_type or "ProcessExit",
            message=origin_rec.message or "",
            injected=origin_rec.injected,
            ranks=ranks,
            pending=pending,
        )
        err = RankError(origin_rank, _synthesize_original(origin_info, origin_rank))
        err.report = failure
        raise err

    values: List[Any] = [None] * nprocs
    clocks: List[Optional[LogicalClock]] = [None] * nprocs
    measured: List[float] = [0.0] * nprocs
    message_count = 0
    byte_count = 0
    adopted: List[Any] = []
    for rank in range(nprocs):
        rep = reports[rank]
        assert rep is not None  # the failed branch above raised otherwise
        if rep["status"] == "aborted":
            # every erroring rank is in `failed`, so a lone "aborted"
            # here means its origin never materialized — treat as error
            origin = rep["errinfo"].get("origin", rank)
            raise RankError(origin, RuntimeError(
                f"rank {rank} observed an abort from rank {origin} but no "
                "rank reported a failure"
            ))
        values[rank] = rep["value"]
        clocks[rank] = _restore_clock(machine, rep["clock"])
        measured[rank] = rep["measured_s"]
        message_count += rep["message_count"]
        byte_count += rep["byte_count"]
        adopted.extend(Span.from_dict(d) for d in rep["spans"])
        if trace is not None and rep["trace_events"]:
            with trace._lock:
                trace.events.extend(rep["trace_events"])
    if adopted:
        adopt = getattr(obs, "adopt", None)
        if adopt is not None:
            adopt(adopted)

    return SpmdResult(
        values=values,
        clocks=clocks,
        message_count=message_count,
        byte_count=byte_count,
        transport="multiprocess",
        measured_rank_s=measured,
        measured_wall_s=measured_wall_s,
    )
