"""Performance modeling of the paper's parallel platforms.

The host running this reproduction has one CPU core and no MPI, so the
runtime/speedup numbers of the paper's evaluation cannot be *measured*;
they are *modeled*.  The model is execution-driven, not analytic: the
router charges every algorithmic operation it actually performs to a
:class:`WorkCounter`, and the simulated MPI layer charges every message it
actually sends with a latency + size/bandwidth cost from a
:class:`MachineModel`.  Each virtual rank therefore carries a logical
clock whose final maximum is the modeled parallel runtime; load imbalance,
synchronization stalls and communication volume all show up because they
really happened during the run.

Machine presets correspond to the two platforms of the paper's Table 5:
:data:`SPARCCENTER_1000` (8-processor shared-memory SMP) and
:data:`INTEL_PARAGON` (distributed-memory MPP with 32 MB nodes — small
enough that the big circuits cannot be routed serially, which the paper
reports as timeouts).
"""

from repro.perfmodel.counter import (
    WorkCounter,
    NullCounter,
    NULL_COUNTER,
    TallyCounter,
    FanoutCounter,
)
from repro.perfmodel.machine import (
    MachineModel,
    SPARCCENTER_1000,
    INTEL_PARAGON,
    GENERIC_CLUSTER,
    MACHINES,
)
from repro.perfmodel.clock import LogicalClock
from repro.perfmodel.memory import estimate_circuit_bytes, estimate_rank_bytes
from repro.perfmodel.report import TimingReport, speedup_table

__all__ = [
    "WorkCounter",
    "NullCounter",
    "NULL_COUNTER",
    "TallyCounter",
    "FanoutCounter",
    "MachineModel",
    "SPARCCENTER_1000",
    "INTEL_PARAGON",
    "GENERIC_CLUSTER",
    "MACHINES",
    "LogicalClock",
    "estimate_circuit_bytes",
    "estimate_rank_bytes",
    "TimingReport",
    "speedup_table",
]
