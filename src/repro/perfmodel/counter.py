"""Work accounting.

Every router kernel charges the operations it performs — MST relaxation
rounds, L-shape cost evaluations, feedthrough matches, flip evaluations —
to a counter under a *work kind*.  Serial runs use a :class:`TallyCounter`
to obtain the modeled serial runtime; parallel ranks use their logical
clock (which implements the same protocol) so per-rank load imbalance is
captured exactly.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Protocol, runtime_checkable


@runtime_checkable
class WorkCounter(Protocol):
    """Anything accepting ``add(kind, units)`` charges."""

    def add(self, kind: str, units: float) -> None:  # pragma: no cover - protocol
        ...


class NullCounter:
    """Discards all charges (default when nobody asks for timing)."""

    __slots__ = ()

    def add(self, kind: str, units: float) -> None:
        """Discard the charge."""
        return None


#: Shared no-op counter.
NULL_COUNTER = NullCounter()


class TallyCounter:
    """Accumulates charged units per work kind."""

    __slots__ = ("units",)

    def __init__(self) -> None:
        self.units: Dict[str, float] = defaultdict(float)

    def add(self, kind: str, units: float) -> None:
        """Charge ``units`` of ``kind`` work."""
        self.units[kind] += units

    def total(self) -> float:
        """Sum of charged units across all kinds."""
        return sum(self.units.values())

    def merged_with(self, other: "TallyCounter") -> "TallyCounter":
        """A new tally holding both counters' charges."""
        out = TallyCounter()
        for src in (self, other):
            for kind, units in src.units.items():
                out.units[kind] += units
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        inner = ", ".join(f"{k}={v:g}" for k, v in sorted(self.units.items()))
        return f"TallyCounter({inner})"


class FanoutCounter:
    """Tallies every charge locally *and* forwards it to a sink counter.

    The orchestrators need both views of the same charges: a private
    :class:`TallyCounter` (the modeled serial runtime recorded in
    ``RoutingResult.work_units``) and whatever counter the caller passed
    in (a rank's logical clock, a test probe).  This is the reusable form
    of that tally+forward pair; charging is on the router's hottest path,
    so forwarding to the shared no-op counter is skipped up front.
    """

    __slots__ = ("tally", "_units", "_sink", "_forward")

    def __init__(self, sink: WorkCounter = NULL_COUNTER, tally: TallyCounter | None = None) -> None:
        self.tally = tally if tally is not None else TallyCounter()
        self._units = self.tally.units  # bound once: add() is hot
        self._sink = sink
        self._forward = not isinstance(sink, NullCounter)

    def add(self, kind: str, units: float) -> None:
        """Charge ``units`` of ``kind`` to the tally and the sink."""
        self._units[kind] += units
        if self._forward:
            self._sink.add(kind, units)
