"""Per-rank logical clocks.

A :class:`LogicalClock` implements the :class:`~repro.perfmodel.counter.
WorkCounter` protocol, so router kernels charge computation to it exactly
as they would to a tally; the simulated MPI layer additionally advances it
across messages (a receive completes no earlier than the matching send's
timestamp plus transfer time).  The final maximum over ranks is the
modeled parallel runtime.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict

from repro.perfmodel.machine import MachineModel


class LogicalClock:
    """Simulated elapsed time of one rank."""

    __slots__ = (
        "machine", "time", "work_units", "comm_seconds", "idle_seconds",
        "slowdown",
    )

    def __init__(self, machine: MachineModel, start: float = 0.0) -> None:
        self.machine = machine
        self.time = start
        self.work_units: Dict[str, float] = defaultdict(float)
        self.comm_seconds = 0.0
        self.idle_seconds = 0.0
        #: straggler multiplier on compute charges (fault injection sets
        #: this; 1.0 — the default — is exact: ``x * 1.0 == x`` bit for
        #: bit, so fault-free modeled times are untouched)
        self.slowdown = 1.0

    # WorkCounter protocol -------------------------------------------------
    def add(self, kind: str, units: float) -> None:
        """Charge work and advance simulated time accordingly."""
        self.work_units[kind] += units
        self.time += self.machine.work_seconds(kind, units) * self.slowdown

    # Communication accounting ----------------------------------------------
    def charge_comm(self, seconds: float) -> None:
        """Time spent actively sending/receiving."""
        self.comm_seconds += seconds
        self.time += seconds

    def wait_until(self, t: float) -> None:
        """Block until simulated time ``t`` (no-op if already past)."""
        if t > self.time:
            self.idle_seconds += t - self.time
            self.time = t

    def compute_seconds(self) -> float:
        """Modeled time spent computing (excludes comm and idle)."""
        return sum(
            self.machine.work_seconds(kind, units)
            for kind, units in self.work_units.items()
        ) * self.slowdown

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"LogicalClock(t={self.time:.4f}s, comm={self.comm_seconds:.4f}s, "
            f"idle={self.idle_seconds:.4f}s)"
        )
