"""Timing reports and speedup computation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence



@dataclass(slots=True)
class TimingReport:
    """Timing of one parallel run.

    The ``rank_*``/``serial_time`` fields are *modeled* — logical-clock
    seconds on the configured machine, identical across transports.  The
    ``measured_*`` fields are real ``time.perf_counter`` seconds from the
    host that ran the ranks; they are only meaningful as parallel times
    when ``transport`` is a real-parallelism transport (the in-process
    transport shares one interpreter across ranks).
    """

    machine: str
    nprocs: int
    rank_times: List[float]
    rank_compute: List[float] = field(default_factory=list)
    rank_comm: List[float] = field(default_factory=list)
    rank_idle: List[float] = field(default_factory=list)
    serial_time: Optional[float] = None
    serial_oom: bool = False
    #: SPMD transport the run executed on (registry name)
    transport: str = "inprocess"
    #: measured per-rank wall seconds (empty when not recorded)
    measured_rank_s: List[float] = field(default_factory=list)
    #: measured wall seconds of the whole parallel section
    measured_wall_s: Optional[float] = None
    #: measured wall seconds of the serial baseline route, when it was
    #: computed in the same process (None when the baseline was reused)
    measured_serial_s: Optional[float] = None

    @property
    def elapsed(self) -> float:
        """Parallel runtime = the slowest rank's clock."""
        return max(self.rank_times) if self.rank_times else 0.0

    @property
    def speedup(self) -> Optional[float]:
        """Speedup over the modeled serial run (None when serial is
        unavailable, e.g. it would not fit in node memory)."""
        if self.serial_time is None or self.elapsed == 0.0:
            return None
        return self.serial_time / self.elapsed

    @property
    def measured_speedup(self) -> Optional[float]:
        """Measured wall-clock speedup over the measured serial route.

        ``None`` unless both walls were measured in this run.  Unlike the
        modeled :attr:`speedup`, this number is host-dependent: it
        includes process startup and message serialization, and it cannot
        exceed the core count of the machine that produced it.
        """
        if not self.measured_serial_s or not self.measured_wall_s:
            return None
        return self.measured_serial_s / self.measured_wall_s

    @property
    def efficiency(self) -> Optional[float]:
        """Speedup divided by the processor count."""
        s = self.speedup
        return None if s is None else s / self.nprocs

    @property
    def load_imbalance(self) -> float:
        """max/mean of per-rank compute time (1.0 = perfectly balanced)."""
        times = self.rank_compute or self.rank_times
        if not times:
            return 1.0
        mean = sum(times) / len(times)
        return (max(times) / mean) if mean > 0 else 1.0

    def summary(self) -> str:
        """One-line human-readable timing summary."""
        sp = self.speedup
        sp_s = f"{sp:.2f}x" if sp is not None else "n/a (serial OOM)" if self.serial_oom else "n/a"
        line = (
            f"{self.machine} p={self.nprocs}: elapsed={self.elapsed:.2f}s, "
            f"speedup={sp_s}, imbalance={self.load_imbalance:.2f}"
        )
        # the in-process transport's wall is thread time in one
        # interpreter — not a parallel measurement worth headline space
        if self.transport != "inprocess" and self.measured_wall_s is not None:
            line += (
                f" | measured ({self.transport}): "
                f"wall={self.measured_wall_s:.3f}s"
            )
            msp = self.measured_speedup
            if msp is not None:
                line += f", speedup={msp:.2f}x"
        return line


def speedup_table(reports: Sequence[TimingReport]) -> Dict[int, Optional[float]]:
    """``nprocs -> speedup`` over a list of runs (figure-series helper)."""
    return {r.nprocs: r.speedup for r in reports}
