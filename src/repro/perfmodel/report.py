"""Timing reports and speedup computation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence



@dataclass(slots=True)
class TimingReport:
    """Modeled timing of one parallel run."""

    machine: str
    nprocs: int
    rank_times: List[float]
    rank_compute: List[float] = field(default_factory=list)
    rank_comm: List[float] = field(default_factory=list)
    rank_idle: List[float] = field(default_factory=list)
    serial_time: Optional[float] = None
    serial_oom: bool = False

    @property
    def elapsed(self) -> float:
        """Parallel runtime = the slowest rank's clock."""
        return max(self.rank_times) if self.rank_times else 0.0

    @property
    def speedup(self) -> Optional[float]:
        """Speedup over the modeled serial run (None when serial is
        unavailable, e.g. it would not fit in node memory)."""
        if self.serial_time is None or self.elapsed == 0.0:
            return None
        return self.serial_time / self.elapsed

    @property
    def efficiency(self) -> Optional[float]:
        """Speedup divided by the processor count."""
        s = self.speedup
        return None if s is None else s / self.nprocs

    @property
    def load_imbalance(self) -> float:
        """max/mean of per-rank compute time (1.0 = perfectly balanced)."""
        times = self.rank_compute or self.rank_times
        if not times:
            return 1.0
        mean = sum(times) / len(times)
        return (max(times) / mean) if mean > 0 else 1.0

    def summary(self) -> str:
        """One-line human-readable timing summary."""
        sp = self.speedup
        sp_s = f"{sp:.2f}x" if sp is not None else "n/a (serial OOM)" if self.serial_oom else "n/a"
        return (
            f"{self.machine} p={self.nprocs}: elapsed={self.elapsed:.2f}s, "
            f"speedup={sp_s}, imbalance={self.load_imbalance:.2f}"
        )


def speedup_table(reports: Sequence[TimingReport]) -> Dict[int, Optional[float]]:
    """``nprocs -> speedup`` over a list of runs (figure-series helper)."""
    return {r.nprocs: r.speedup for r in reports}
