"""Per-rank memory footprint estimation.

The paper partitions circuits across processors precisely "in order to
solve large routing problems which require considerable amount of memory"
(§3), and its Table 5 shows the Intel Paragon's 32 MB nodes failing to
route the largest circuits serially.  This module estimates the resident
footprint of a (sub-)circuit inside the router so experiments can
reproduce that memory wall.

Constants approximate a C implementation of TWGR (structs plus routing
working state), not Python object sizes — the model asks "would the 1997
code have fit", not "does CPython fit".
"""

from __future__ import annotations

from repro.circuits.model import Circuit, CircuitStats

#: bytes per pin record incl. routing state (net lists, tree vertices)
BYTES_PER_PIN = 300
#: bytes per cell record
BYTES_PER_CELL = 100
#: bytes per net record incl. segment bookkeeping
BYTES_PER_NET = 300
#: process fixed overhead (code, grid, buffers)
FIXED_BYTES = 2 * 1024 * 1024
#: working-set multiplier (temporary arrays, fragmentation)
OVERHEAD = 1.2


def estimate_bytes(num_pins: int, num_cells: int, num_nets: int) -> int:
    """Footprint of a rank holding the given object counts."""
    dynamic = (
        BYTES_PER_PIN * num_pins + BYTES_PER_CELL * num_cells + BYTES_PER_NET * num_nets
    )
    return int(FIXED_BYTES + OVERHEAD * dynamic)


def estimate_circuit_bytes(source: Circuit | CircuitStats) -> int:
    """Footprint of one rank holding the entire circuit (the serial case)."""
    stats = source.stats() if isinstance(source, Circuit) else source
    return estimate_bytes(stats.num_pins, stats.num_cells, stats.num_nets)


def estimate_rank_bytes(
    source: Circuit | CircuitStats, nprocs: int, replication: float = 0.15
) -> int:
    """Footprint of one of ``nprocs`` ranks under row-wise partitioning.

    Cells, pins and nets split roughly evenly; ``replication`` accounts
    for boundary structures each rank additionally holds (fake pins,
    shared-channel state, whole-net trees it owns).
    """
    if nprocs <= 0:
        raise ValueError("nprocs must be positive")
    stats = source.stats() if isinstance(source, Circuit) else source
    share = 1.0 / nprocs + replication
    return estimate_bytes(
        int(stats.num_pins * share),
        int(stats.num_cells * share),
        int(stats.num_nets * share),
    )
