"""Machine models for the paper's evaluation platforms.

Calibration philosophy: *shape over seconds*.  The per-unit work costs are
chosen so modeled serial runtimes land in the ballpark the paper reports
(minutes for the small circuits, tens of minutes for avq.large on the Sun
SparcCenter 1000 — "we have been able to reduce runtimes of some circuits
from half an hour to minutes"), but the experiments only ever interpret
*ratios* (speedups) and orderings, which come from measured work and
messages, not from these constants.

The Intel Paragon preset models the properties the paper leans on:
slower per-node compute than the SparcCenter's SuperSPARC modules, a much
larger message latency than the SMP's shared memory, and 32 MB of memory
per node — too little to route the largest circuits serially (Table 5's
"timeout" entries).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass(frozen=True, slots=True)
class MachineModel:
    """Cost model of one parallel platform."""

    name: str
    #: seconds per work unit (multiplied by per-kind factors)
    base_seconds_per_unit: float
    #: message startup cost, seconds
    latency_s: float
    #: message transfer rate, bytes/second
    bandwidth_Bps: float
    #: memory available to one rank, bytes
    per_node_memory: int
    #: how many processors the platform offers
    max_procs: int
    #: relative cost of each work kind (default 1.0)
    kind_factor: Dict[str, float] = field(default_factory=dict)
    #: fixed per-collective software overhead, seconds
    collective_overhead_s: float = 0.0

    def work_seconds(self, kind: str, units: float) -> float:
        """Modeled CPU seconds for ``units`` of ``kind`` work."""
        return self.base_seconds_per_unit * self.kind_factor.get(kind, 1.0) * units

    def msg_seconds(self, nbytes: int) -> float:
        """Modeled transfer time of one point-to-point message."""
        return self.latency_s + nbytes / self.bandwidth_Bps

    def fits_in_memory(self, nbytes: int) -> bool:
        """True when one node can hold a footprint of ``nbytes``."""
        return nbytes <= self.per_node_memory


#: Sun SparcCenter 1000: 8-processor shared-memory SMP.  Message passing
#: through shared memory: low latency, high bandwidth.
SPARCCENTER_1000 = MachineModel(
    name="SparcCenter-1000",
    base_seconds_per_unit=4.0e-5,
    latency_s=8.0e-5,
    bandwidth_Bps=40e6,
    per_node_memory=512 * 1024 * 1024 // 8,  # 512 MB shared across 8 CPUs
    max_procs=8,
    collective_overhead_s=2.5e-4,
)

#: Intel Paragon: distributed-memory MPP, i860 nodes with 32 MB each.
INTEL_PARAGON = MachineModel(
    name="Intel-Paragon",
    base_seconds_per_unit=5.5e-5,
    latency_s=1.8e-4,
    bandwidth_Bps=25e6,
    per_node_memory=32 * 1024 * 1024,
    max_procs=20,
    collective_overhead_s=5.0e-4,
)

#: A present-day commodity cluster, for extension experiments.
GENERIC_CLUSTER = MachineModel(
    name="generic-cluster",
    base_seconds_per_unit=2.0e-8,
    latency_s=2.0e-6,
    bandwidth_Bps=10e9,
    per_node_memory=16 * 1024 * 1024 * 1024,
    max_procs=64,
    collective_overhead_s=5.0e-6,
)

#: Registry by name (used by the CLI-ish experiment helpers).
MACHINES: Dict[str, MachineModel] = {
    m.name: m for m in (SPARCCENTER_1000, INTEL_PARAGON, GENERIC_CLUSTER)
}
