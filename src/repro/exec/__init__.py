"""Sweep execution engine: fan-out, run cache, run records.

The repo's experiment suite is a sweep over circuits × algorithms ×
processor counts, and every sweep point is an independent deterministic
computation.  This package executes such sweeps:

* :mod:`repro.exec.record` — :class:`RunRecord`, the compact picklable
  and JSON-safe record one sweep point produces (quality metrics, the
  modeled timing report, and the shared serial baseline) instead of the
  full ``RoutingResult``/artifact object graph;
* :mod:`repro.exec.cache` — :class:`RunCache`, a content-addressed
  on-disk cache of run records, keyed by a hash of everything that
  determines the run (circuit spec, configs, machine, algorithm,
  processor count, seed, and a code-version salt);
* :mod:`repro.exec.engine` — :class:`SweepPoint` and :func:`run_sweep`,
  which resolve cache hits, compute each distinct serial baseline once,
  and fan the remaining points out over a ``ProcessPoolExecutor``
  (degrading gracefully to in-process execution on one-core hosts,
  ``jobs=1``, or pool failure).

Every run is deterministic, so a pooled run, its cached replay, and a
direct in-process :func:`repro.parallel.driver.route_parallel` call
produce bit-identical quality metrics and modeled times —
``tests/exec/test_engine.py`` enforces this.
"""

from repro.exec.cache import CODE_SALT, RunCache, cache_key
from repro.exec.engine import (
    DEGRADED_EXIT,
    PointFailure,
    SweepOutcome,
    SweepPoint,
    execute_point,
    resolve_jobs,
    retry_backoff_s,
    run_sweep,
    run_sweep_salvage,
)
from repro.exec.record import RunRecord

__all__ = [
    "CODE_SALT",
    "DEGRADED_EXIT",
    "PointFailure",
    "RunCache",
    "RunRecord",
    "SweepOutcome",
    "SweepPoint",
    "cache_key",
    "execute_point",
    "resolve_jobs",
    "retry_backoff_s",
    "run_sweep",
    "run_sweep_salvage",
]
