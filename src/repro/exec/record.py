"""Compact run records — what a sweep point returns and what gets cached.

A :class:`RunRecord` carries plain dicts (the :mod:`repro.analysis.records`
serialization of ``RoutingResult`` and ``TimingReport``) rather than live
objects, so it pickles cheaply across the process pool, serializes to
JSON for the on-disk cache, and reconstructs the exact same values on
every path: Python ints are exact, and floats survive both pickling and
JSON round-trips bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.parallel.driver import ParallelRun
from repro.perfmodel.report import TimingReport
from repro.twgr.result import RoutingResult


def _codec():
    """The dict<->object converters, imported lazily.

    ``repro.analysis`` (whose package init pulls in the experiment
    runners) itself imports this package, so importing
    ``repro.analysis.records`` at module scope would be circular.
    """
    from repro.analysis import records

    return records


@dataclass(slots=True)
class RunRecord:
    """Everything one executed sweep point produced.

    ``algorithm == "serial"`` records have no ``timing``/``baseline``;
    parallel records embed the serial baseline they were scaled against.
    """

    circuit: str
    scale: float
    circuit_seed: int
    algorithm: str
    nprocs: int
    machine: str
    result: Dict[str, Any] = field(default_factory=dict)
    timing: Optional[Dict[str, Any]] = None
    baseline: Optional[Dict[str, Any]] = None
    #: per-step telemetry summary (:class:`repro.obs.profile.RunProfile`
    #: dict form); ``None`` for records predating the telemetry layer
    profile: Optional[Dict[str, Any]] = None
    #: content-address of this run in the cache ("" when not computed)
    key: str = ""
    #: True when this record was replayed from the on-disk cache
    cached: bool = False
    #: host wall seconds spent computing (0.0 for cache hits)
    host_seconds: float = 0.0
    #: how many execution attempts this record took (salvage runs retry
    #: transiently failing points; 1 everywhere else, including records
    #: predating the field)
    attempts: int = 1
    #: coordinates of the experiment-spec cell that produced this run
    #: (``{}`` for runs outside a declarative experiment); stamped
    #: parent-side by :func:`repro.analysis.specs.run_experiment`
    spec_coord: Dict[str, Any] = field(default_factory=dict)

    # -- reconstruction -------------------------------------------------
    def routing_result(self) -> RoutingResult:
        """The run's ``RoutingResult``, rebuilt from the record."""
        return _codec().result_from_dict(self.result)

    def baseline_result(self) -> Optional[RoutingResult]:
        """The shared serial baseline, when one was attached."""
        if self.baseline is None:
            return None
        return _codec().result_from_dict(self.baseline)

    def timing_report(self) -> Optional[TimingReport]:
        """The modeled timing report (parallel records only)."""
        if self.timing is None:
            return None
        return _codec().timing_from_dict(self.timing)

    def parallel_run(self) -> ParallelRun:
        """Rebuild the :class:`ParallelRun` bundle analysis code consumes."""
        timing = self.timing_report()
        if timing is None:
            raise ValueError(
                f"record for {self.circuit}/{self.algorithm} is a serial "
                "baseline; it has no timing report"
            )
        return ParallelRun(
            result=self.routing_result(),
            timing=timing,
            baseline=self.baseline_result(),
        )

    def run_profile(self) -> Optional["Any"]:
        """The embedded :class:`~repro.obs.profile.RunProfile`, if any."""
        if self.profile is None:
            return None
        from repro.obs.profile import RunProfile

        return RunProfile.from_dict(self.profile)

    @property
    def quality(self) -> Tuple[int, int, int, Optional[float]]:
        """The bit-identity tuple: (tracks, area, feedthroughs, model_time)."""
        return (
            self.result["total_tracks"],
            self.result["area"],
            self.result["num_feedthroughs"],
            self.result["model_time"],
        )

    # -- serialization --------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict form (inverse of :meth:`from_dict`).

        ``spec_coord`` is emitted only when set, so records produced
        outside a declarative experiment keep their pre-field shape.
        """
        out = {
            "format": "repro-run-record-v1",
            "circuit": self.circuit,
            "scale": self.scale,
            "circuit_seed": self.circuit_seed,
            "algorithm": self.algorithm,
            "nprocs": self.nprocs,
            "machine": self.machine,
            "result": self.result,
            "timing": self.timing,
            "baseline": self.baseline,
            "profile": self.profile,
            "key": self.key,
            "host_seconds": self.host_seconds,
            "attempts": self.attempts,
        }
        if self.spec_coord:
            out["spec_coord"] = self.spec_coord
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any], cached: bool = False) -> "RunRecord":
        """Rebuild a record (e.g. from the cache); marks provenance."""
        if data.get("format") != "repro-run-record-v1":
            raise ValueError("not a repro run record")
        return cls(
            circuit=data["circuit"],
            scale=data["scale"],
            circuit_seed=data["circuit_seed"],
            algorithm=data["algorithm"],
            nprocs=data["nprocs"],
            machine=data["machine"],
            result=data["result"],
            timing=data.get("timing"),
            baseline=data.get("baseline"),
            profile=data.get("profile"),
            key=data.get("key", ""),
            cached=cached,
            host_seconds=0.0 if cached else data.get("host_seconds", 0.0),
            attempts=int(data.get("attempts", 1)),
            spec_coord=dict(data.get("spec_coord", {})),
        )


def record_from_results(
    point: Any,
    result: RoutingResult,
    timing: Optional[TimingReport] = None,
    baseline: Optional[RoutingResult] = None,
    profile: Optional[Dict[str, Any]] = None,
    key: str = "",
    host_seconds: float = 0.0,
) -> RunRecord:
    """Build a :class:`RunRecord` from live router objects."""
    codec = _codec()
    return RunRecord(
        circuit=point.circuit,
        scale=point.scale,
        circuit_seed=point.circuit_seed,
        algorithm=point.algorithm,
        nprocs=point.nprocs,
        machine=point.machine,
        result=codec.result_to_dict(result),
        timing=codec.timing_to_dict(timing) if timing is not None else None,
        baseline=codec.result_to_dict(baseline) if baseline is not None else None,
        profile=profile,
        key=key,
        host_seconds=host_seconds,
    )
