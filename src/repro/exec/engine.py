"""Sweep execution: shared baselines, cache resolution, process fan-out.

A :class:`SweepPoint` names one deterministic routing run — circuit
(by benchmark name, scale, and seed), algorithm, processor count,
machine model, and the two config dataclasses.  :func:`run_sweep`
executes a batch of points:

1. resolve cache hits (nothing deterministic is ever computed twice);
2. compute each *distinct* serial baseline exactly once — a processor
   sweep over one circuit/config shares a single serial route, and the
   ablation sweeps (which vary only ``ParallelConfig``) share it too,
   because the baseline key normalizes the parallel knobs away;
3. fan the remaining points out over a ``ProcessPoolExecutor``, each
   worker regenerating its circuit from the spec (specs pickle in
   microseconds; circuits would not) and returning a compact
   :class:`~repro.exec.record.RunRecord` dict.

``jobs=1``, a one-core host, a single task, or any pool failure all
degrade to plain in-process execution of the identical code path, so
results never depend on how they were scheduled.
"""

from __future__ import annotations

import dataclasses
import logging
import os
import random
import time
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.circuits import mcnc
from repro.circuits.model import CircuitStats
from repro.exec.cache import RunCache, cache_key
from repro.exec.record import RunRecord, record_from_results
from repro.parallel.driver import ParallelConfig, route_parallel, serial_baseline
from repro.perfmodel.machine import MACHINES
from repro.twgr.config import RouterConfig
from repro.twgr.result import RoutingResult

#: environment override for the default worker count
JOBS_ENV = "REPRO_JOBS"

#: process exit status for a sweep that completed but lost points —
#: distinct from success (0) and from hard failure (1) so callers can
#: script around partial results
DEGRADED_EXIT = 3

#: ceiling on one retry sleep; exponential growth stops here so a flaky
#: point can never stall a sweep (or a service worker) for minutes
DEFAULT_BACKOFF_CAP_S = 2.0


def retry_backoff_s(
    backoff_s: float,
    attempt: int,
    cap_s: float = DEFAULT_BACKOFF_CAP_S,
    jitter_key: str = "",
) -> float:
    """Host-seconds to sleep before retry ``attempt`` (2-based).

    Exponential (``backoff_s`` doubling per retry) but *capped* at
    ``cap_s``, then spread by deterministic jitter in ``[0.5x, 1.5x]``
    drawn from ``(jitter_key, attempt)``.  The jitter is a pure function
    of its inputs — no global RNG, no wall clock — so seeded chaos
    replays sleep bit-identically, while N coalesced clients retrying
    the same flaky point (distinct jitter keys) fan out instead of
    thundering in lockstep.
    """
    if backoff_s <= 0:
        return 0.0
    base = min(backoff_s * (2 ** (attempt - 2)), max(cap_s, backoff_s))
    rnd = random.Random(f"{jitter_key}:retry{attempt}").random()
    return base * (0.5 + rnd)

log = logging.getLogger("repro.exec")


@dataclass(frozen=True, slots=True)
class SweepPoint:
    """One deterministic routing run, identified by value.

    Circuits are referenced by benchmark name + scale + seed (the
    generator is seeded, so this fully determines the netlist) rather
    than by object, which keeps points hashable, picklable, and
    content-addressable.
    """

    circuit: str
    algorithm: str = "serial"
    nprocs: int = 1
    scale: float = 1.0
    circuit_seed: int = 0
    machine: str = "SparcCenter-1000"
    config: RouterConfig = field(default_factory=RouterConfig)
    pconfig: ParallelConfig = field(default_factory=ParallelConfig)
    #: named SPMD fault plan injected into the routed run ("" = none);
    #: see :data:`repro.faults.NAMED_PLANS`.  Part of the point's
    #: identity: a faulted run is a different deterministic computation,
    #: so it gets its own cache entry.
    fault_plan: str = ""
    #: seed of the fault plan (which rank crashes, delay magnitudes)
    fault_seed: int = 0

    def validate(self) -> None:
        """Raise early on specs the workers would reject later."""
        mcnc.spec(self.circuit)  # KeyError with the benchmark list
        machine = MACHINES.get(self.machine)
        if machine is None:
            raise ValueError(
                f"unknown machine {self.machine!r}; choose from {sorted(MACHINES)}"
            )
        if self.algorithm != "serial":
            if self.nprocs < 1:
                raise ValueError("nprocs must be >= 1")
            if self.nprocs > machine.max_procs:
                raise ValueError(
                    f"{machine.name} has only {machine.max_procs} processors, "
                    f"asked for {self.nprocs}"
                )
        if self.fault_plan:
            from repro.faults import NAMED_PLANS

            if self.fault_plan not in NAMED_PLANS:
                raise ValueError(
                    f"unknown fault plan {self.fault_plan!r}; "
                    f"choose from {sorted(NAMED_PLANS)}"
                )
            if self.algorithm == "serial":
                raise ValueError(
                    "fault plans inject into the SPMD runtime; "
                    "serial points cannot carry one"
                )
        self.config.validate()

    def spec(self) -> Dict[str, Any]:
        """Canonical JSON-safe description — the cache-key payload.

        Serial runs drop the parallel knobs so every ``ParallelConfig``
        ablation shares one baseline entry.
        """
        spec: Dict[str, Any] = {
            "circuit": self.circuit,
            "scale": self.scale,
            "circuit_seed": self.circuit_seed,
            "algorithm": self.algorithm,
            "nprocs": 1 if self.algorithm == "serial" else self.nprocs,
            "machine": self.machine,
            "config": dataclasses.asdict(self.config),
        }
        if self.algorithm != "serial":
            spec["pconfig"] = dataclasses.asdict(self.pconfig)
        if self.fault_plan:
            # only faulted points carry the keys, so every pre-existing
            # cache entry keeps its content address
            spec["fault_plan"] = self.fault_plan
            spec["fault_seed"] = self.fault_seed
        return spec

    def key(self) -> str:
        """Content address of this point (includes the code salt)."""
        return cache_key(self.spec())

    def baseline_point(self) -> "SweepPoint":
        """The serial run this point's quality is scaled against.

        Fault knobs are cleared: the baseline of a faulted run is the
        clean serial route, so faulted and clean sweeps share it.
        """
        return replace(
            self, algorithm="serial", nprocs=1, pconfig=ParallelConfig(),
            fault_plan="", fault_seed=0,
        )

    def describe(self) -> str:
        """Short human-readable label (progress/benchmark output)."""
        if self.algorithm == "serial":
            return f"{self.circuit}@{self.scale:g} serial [{self.machine}]"
        label = (
            f"{self.circuit}@{self.scale:g} {self.algorithm} "
            f"p={self.nprocs} [{self.machine}]"
        )
        if self.fault_plan:
            label += f" +{self.fault_plan}"
        return label


def _full_scale_stats(name: str) -> CircuitStats:
    """Full-size benchmark counts, which gate the per-node memory model
    (the Paragon "timeout" entries of Table 5) even when the routed
    instance is scaled down."""
    stats = mcnc.spec(name)
    return CircuitStats(
        num_rows=stats.rows,
        num_pins=int(stats.nets * stats.mean_degree + sum(stats.clock_net_degrees)),
        num_cells=stats.cells,
        num_nets=stats.nets,
    )


def _execute(point: SweepPoint, baseline: Optional[RoutingResult]) -> RunRecord:
    """Compute one point in this process (the only code path that routes).

    Every execution is traced — step spans are cheap relative to routing —
    so all records carry a :class:`~repro.obs.profile.RunProfile` and
    cached replays keep their telemetry.  Tracing is passive (see
    :mod:`repro.obs`): routed metrics are bit-identical with or without it.
    """
    from repro.obs.profile import profile_from_tracer
    from repro.obs.tracer import Tracer

    circuit = mcnc.generate(point.circuit, scale=point.scale, seed=point.circuit_seed)
    machine = MACHINES[point.machine]
    tracer = Tracer()
    t0 = time.perf_counter()
    if point.algorithm == "serial":
        result = serial_baseline(
            circuit,
            point.config,
            machine=machine,
            memory_stats=_full_scale_stats(point.circuit),
            tracer=tracer,
        )
        run_result = result
    else:
        faults = None
        if point.fault_plan:
            from repro.faults import make_plan

            faults = make_plan(point.fault_plan, point.nprocs, point.fault_seed)
        run = route_parallel(
            circuit,
            algorithm=point.algorithm,
            nprocs=point.nprocs,
            machine=machine,
            config=point.config,
            pconfig=point.pconfig,
            baseline=baseline,
            compute_baseline=False,
            obs=tracer,
            faults=faults,
        )
        run_result = run.result
    host_seconds = time.perf_counter() - t0
    # stamp the transport only when it is a real-parallelism one: serial
    # points have no transport, and the in-process default stays implicit
    # so profiles recorded before the transport layer stay byte-stable
    transport = (
        "" if point.algorithm == "serial"
        else point.config.resolved_transport()
    )
    profile = profile_from_tracer(
        tracer,
        circuit=point.circuit,
        algorithm=point.algorithm,
        nprocs=point.nprocs,
        scale=point.scale,
        seed=point.circuit_seed,
        machine=machine,
        backend=point.config.resolved_backend(),
        transport="" if transport == "inprocess" else transport,
        model_time=run_result.model_time,
    )
    if point.algorithm == "serial":
        return record_from_results(
            point, result, profile=profile.to_dict(), key=point.key(),
            host_seconds=host_seconds,
        )
    return record_from_results(
        point,
        run.result,
        timing=run.timing,
        baseline=baseline,
        profile=profile.to_dict(),
        key=point.key(),
        host_seconds=host_seconds,
    )


def _observe_record(record: RunRecord) -> RunRecord:
    """Parent-side latency bookkeeping for freshly computed points.

    Folds the point's host wall time into the process-wide
    ``engine.point_host_ms`` histogram, which `repro profile` and
    `repro metrics export` surface as p50/p95/p99 — cache replays never
    count (their ``host_seconds`` is the replay cost, not a route).
    """
    from repro.obs.metrics import REGISTRY

    if not record.cached:
        REGISTRY.histogram("engine.point_host_ms").observe(
            record.host_seconds * 1e3
        )
    return record


def _worker(task: Tuple[SweepPoint, Optional[Dict[str, Any]]]) -> Dict[str, Any]:
    """Process-pool entry point: compute one point, return its dict form."""
    from repro.analysis.records import result_from_dict  # avoids an import cycle

    point, baseline_dict = task
    baseline = result_from_dict(baseline_dict) if baseline_dict is not None else None
    return _execute(point, baseline).to_dict()


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Effective worker count: explicit > ``REPRO_JOBS`` > host cores."""
    if jobs is not None and jobs > 0:
        return jobs
    env = os.environ.get(JOBS_ENV, "").strip()
    if env:
        try:
            parsed = int(env)
        except ValueError:
            parsed = 0
        if parsed > 0:
            return parsed
    return os.cpu_count() or 1


def _map_tasks(
    tasks: Sequence[Tuple[SweepPoint, Optional[Dict[str, Any]]]],
    jobs: int,
    worker: Any = None,
) -> List[Any]:
    """Run tasks across the pool (or inline), preserving order.

    Falls back to in-process execution only for *pool* failures — the
    pool cannot be created (sandboxed host, fork limits) or dies mid-map
    (``BrokenProcessPool``, ``OSError``).  The worker is a pure function,
    so rerunning inline yields the identical records.  A deterministic
    exception raised *by the worker* is a result, not a pool failure: it
    propagates to the caller instead of silently rerunning the whole
    batch inline (which used to mask the error until the inline rerun hit
    it again — or worse, hid genuine nondeterminism).
    """
    worker = worker or _worker
    if jobs <= 1 or len(tasks) <= 1:
        return [worker(t) for t in tasks]
    try:
        from concurrent.futures import ProcessPoolExecutor
        from concurrent.futures.process import BrokenProcessPool

        pool = ProcessPoolExecutor(max_workers=min(jobs, len(tasks)))
    except (ImportError, OSError, PermissionError, RuntimeError, ValueError) as exc:
        log.warning(
            "process pool unavailable (%s: %s); running %d task(s) inline",
            type(exc).__name__, exc, len(tasks),
        )
        return [worker(t) for t in tasks]
    try:
        with pool:
            return list(pool.map(worker, tasks))
    except (BrokenProcessPool, OSError) as exc:
        log.warning(
            "process pool died (%s: %s); rerunning %d task(s) inline",
            type(exc).__name__, exc, len(tasks),
        )
        return [worker(t) for t in tasks]


def execute_point(
    point: SweepPoint,
    cache: Optional[RunCache] = None,
    baseline_record: Optional[RunRecord] = None,
    compute_baseline: bool = True,
) -> RunRecord:
    """Execute (or replay) a single point in-process.

    Parallel points need a serial baseline for scaled metrics; pass one
    as ``baseline_record`` to share it across calls, or let this resolve
    it (through the cache when one is given).  ``compute_baseline=False``
    skips the baseline entirely, mirroring
    :func:`~repro.parallel.driver.route_parallel`.
    """
    point.validate()
    key = point.key()
    if cache is not None:
        payload = cache.get(key)
        if payload is not None:
            cache.persist_stats()
            return RunRecord.from_dict(payload, cached=True)
    baseline: Optional[RoutingResult] = None
    if point.algorithm != "serial":
        if baseline_record is None and compute_baseline:
            baseline_record = execute_point(point.baseline_point(), cache=cache)
        if baseline_record is not None:
            baseline = baseline_record.routing_result()
    record = _observe_record(_execute(point, baseline))
    if cache is not None:
        cache.put(key, record.to_dict())
        cache.persist_stats()
    return record


def run_sweep(
    points: Sequence[SweepPoint],
    jobs: Optional[int] = None,
    cache: Optional[RunCache] = None,
) -> List[RunRecord]:
    """Execute a batch of points; returns records in input order.

    Cache hits are replayed without computing; each distinct serial
    baseline is computed once and shared by every parallel point that
    scales against it; everything else fans out across ``jobs`` worker
    processes (default: :func:`resolve_jobs`).
    """
    points = list(points)
    for p in points:
        p.validate()
    njobs = resolve_jobs(jobs)
    keys = [p.key() for p in points]
    records: List[Optional[RunRecord]] = [None] * len(points)

    if cache is not None:
        for i, key in enumerate(keys):
            payload = cache.get(key)
            if payload is not None:
                records[i] = RunRecord.from_dict(payload, cached=True)

    todo = [i for i, r in enumerate(records) if r is None]

    # -- phase 1: each distinct serial baseline, exactly once ------------
    base_points: Dict[str, SweepPoint] = {}
    for i in todo:
        p = points[i]
        bp = p if p.algorithm == "serial" else p.baseline_point()
        base_points.setdefault(bp.key(), bp)
    base_records: Dict[str, RunRecord] = {}
    missing: List[Tuple[str, SweepPoint]] = []
    for bkey, bp in base_points.items():
        payload = cache.get(bkey) if cache is not None else None
        if payload is not None:
            base_records[bkey] = RunRecord.from_dict(payload, cached=True)
        else:
            missing.append((bkey, bp))
    if missing:
        outputs = _map_tasks([(bp, None) for _, bp in missing], njobs)
        for (bkey, _bp), out in zip(missing, outputs):
            rec = _observe_record(RunRecord.from_dict(out))
            base_records[bkey] = rec
            if cache is not None:
                cache.put(bkey, out)

    # -- phase 2: the parallel points, against their shared baselines ----
    tasks: List[Tuple[SweepPoint, Optional[Dict[str, Any]]]] = []
    task_slots: List[int] = []
    for i in todo:
        p = points[i]
        if p.algorithm == "serial":
            records[i] = base_records[p.key()]
            continue
        tasks.append((p, base_records[p.baseline_point().key()].result))
        task_slots.append(i)
    if tasks:
        outputs = _map_tasks(tasks, njobs)
        for i, out in zip(task_slots, outputs):
            records[i] = _observe_record(RunRecord.from_dict(out))
            if cache is not None:
                cache.put(keys[i], out)

    if cache is not None:
        cache.persist_stats()
    return [r for r in records if r is not None]


# -- failure-containing execution ---------------------------------------


def _safe_worker(
    task: Tuple[SweepPoint, Optional[Dict[str, Any]]],
) -> Tuple[str, Any, str]:
    """Pool entry point that converts exceptions into values.

    Returns ``("ok", record_dict, "")`` or ``("err", error_type_name,
    message)`` — so one failing point never tears down the batch, and
    the parent can decide per point whether to retry or salvage.
    """
    try:
        return ("ok", _worker(task), "")
    except BaseException as exc:  # contained: reported per point
        return ("err", type(exc).__name__, str(exc))


@dataclass(slots=True)
class PointFailure:
    """One sweep point that still failed after every allowed retry."""

    point: SweepPoint
    error_type: str
    message: str
    attempts: int

    def describe(self) -> str:
        return (
            f"{self.point.describe()}: {self.error_type}: {self.message} "
            f"(after {self.attempts} attempt{'s' if self.attempts != 1 else ''})"
        )


@dataclass(slots=True)
class SweepOutcome:
    """What :func:`run_sweep_salvage` produced: survivors plus a ledger.

    ``records`` holds every point that succeeded (in input order);
    ``failures`` every point that exhausted its retries.  ``exit_code``
    maps that to a process status: 0 when clean, :data:`DEGRADED_EXIT`
    when results were salvaged around failures.
    """

    records: List[RunRecord]
    failures: List[PointFailure]
    retries: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def exit_code(self) -> int:
        return 0 if not self.failures else DEGRADED_EXIT

    def summary(self) -> str:
        parts = [
            f"{len(self.records)} point(s) completed",
            f"{len(self.failures)} failed",
        ]
        if self.retries:
            parts.append(f"{self.retries} retr{'ies' if self.retries != 1 else 'y'}")
        return ", ".join(parts)


def _salvage_attempt(
    point: SweepPoint,
    baseline_dict: Optional[Dict[str, Any]],
    attempt: int,
    faults: Any,
) -> Tuple[str, Any, str]:
    """One inline attempt at one point, behind the parent-side fault gate.

    ``faults.on_point`` runs in the parent (process-pool workers never
    see the plan object), so injected point failures are deterministic
    regardless of how the work is scheduled.
    """
    from repro.faults.plan import InjectedFault

    try:
        faults.on_point(point.describe(), attempt)
    except InjectedFault as exc:
        return ("err", "InjectedFault", str(exc))
    return _safe_worker((point, baseline_dict))


def run_sweep_salvage(
    points: Sequence[SweepPoint],
    jobs: Optional[int] = None,
    cache: Optional[RunCache] = None,
    faults: Optional[Any] = None,
    max_retries: int = 2,
    backoff_s: float = 0.05,
    backoff_cap_s: float = DEFAULT_BACKOFF_CAP_S,
) -> SweepOutcome:
    """Execute a batch of points, containing per-point failures.

    Unlike :func:`run_sweep` — which lets the first worker exception
    abort the whole batch — this variant retries each failed point up to
    ``max_retries`` more times (exponential backoff starting at
    ``backoff_s`` host-seconds, capped at ``backoff_cap_s`` and spread
    with deterministic per-point jitter — see :func:`retry_backoff_s`)
    and then salvages everything else: the
    returned :class:`SweepOutcome` carries all surviving records plus a
    :class:`PointFailure` ledger, and ``outcome.exit_code`` is
    :data:`DEGRADED_EXIT` when anything was lost.

    ``faults`` accepts a :class:`~repro.faults.plan.FaultPlan` whose
    ``on_point``/``on_cache`` hooks inject deterministic transient
    failures (consulted parent-side, so determinism survives process
    pools).  Cache write errors are contained and counted
    (``cache.put_errors``), never fatal — a record that could not be
    cached is still a record.
    """
    from repro.faults.plan import NULL_FAULT_PLAN
    from repro.obs.metrics import REGISTRY

    if faults is None:
        faults = NULL_FAULT_PLAN
    if max_retries < 0:
        raise ValueError("max_retries must be >= 0")
    points = list(points)
    for p in points:
        p.validate()
    njobs = resolve_jobs(jobs)
    keys = [p.key() for p in points]
    records: List[Optional[RunRecord]] = [None] * len(points)
    failures: Dict[int, PointFailure] = {}
    retries = 0

    def _contained_put(key: str, payload: Dict[str, Any]) -> None:
        if cache is None:
            return
        try:
            cache.put(key, payload)
        except OSError as exc:
            REGISTRY.counter("cache.put_errors").inc()
            log.warning("cache write failed for %s (%s); continuing", key, exc)

    def _run_with_retries(
        i: int, point: SweepPoint, baseline_dict: Optional[Dict[str, Any]],
        first: Optional[Tuple[str, Any, str]] = None,
    ) -> Optional[Dict[str, Any]]:
        """Drive one point to success or a PointFailure; returns its dict."""
        nonlocal retries
        attempt = 1
        out = first if first is not None else _salvage_attempt(
            point, baseline_dict, attempt, faults
        )
        while out[0] == "err" and attempt <= max_retries:
            attempt += 1
            retries += 1
            REGISTRY.counter("engine.retries").inc()
            time.sleep(retry_backoff_s(
                backoff_s, attempt, cap_s=backoff_cap_s,
                jitter_key=point.key(),
            ))
            out = _salvage_attempt(point, baseline_dict, attempt, faults)
        if out[0] == "err":
            failures[i] = PointFailure(
                point=point, error_type=out[1], message=out[2], attempts=attempt
            )
            REGISTRY.counter("engine.failed_points").inc()
            log.warning("point lost: %s", failures[i].describe())
            return None
        payload = out[1]
        if attempt > 1:
            payload = dict(payload)
            payload["attempts"] = attempt
        return payload

    if cache is not None:
        for i, key in enumerate(keys):
            payload = cache.get(key)
            if payload is not None:
                records[i] = RunRecord.from_dict(payload, cached=True)
    todo = [i for i, r in enumerate(records) if r is None]

    # -- phase 1: distinct serial baselines (shared, so a lost baseline
    #    fails every point that scales against it) ----------------------
    base_points: Dict[str, SweepPoint] = {}
    for i in todo:
        p = points[i]
        bp = p if p.algorithm == "serial" else p.baseline_point()
        base_points.setdefault(bp.key(), bp)
    base_records: Dict[str, RunRecord] = {}
    base_failed: Dict[str, str] = {}
    missing: List[Tuple[str, SweepPoint]] = []
    for bkey, bp in base_points.items():
        payload = cache.get(bkey) if cache is not None else None
        if payload is not None:
            base_records[bkey] = RunRecord.from_dict(payload, cached=True)
        else:
            missing.append((bkey, bp))
    for bkey, bp in missing:
        payload = _run_with_retries(-1, bp, None)
        if payload is None:
            lost = failures.pop(-1)
            base_failed[bkey] = (
                f"serial baseline failed: {lost.error_type}: {lost.message}"
            )
            continue
        base_records[bkey] = _observe_record(RunRecord.from_dict(payload))
        _contained_put(bkey, payload)

    # -- phase 2: the remaining points ----------------------------------
    tasks: List[Tuple[SweepPoint, Optional[Dict[str, Any]]]] = []
    task_slots: List[int] = []
    for i in todo:
        p = points[i]
        bkey = p.key() if p.algorithm == "serial" else p.baseline_point().key()
        if p.algorithm == "serial":
            if bkey in base_records:
                records[i] = base_records[bkey]
            else:
                failures[i] = PointFailure(
                    point=p, error_type="BaselineFailure",
                    message=base_failed.get(bkey, "serial baseline failed"),
                    attempts=max_retries + 1,
                )
                REGISTRY.counter("engine.failed_points").inc()
            continue
        if bkey not in base_records:
            failures[i] = PointFailure(
                point=p, error_type="BaselineFailure",
                message=base_failed.get(bkey, "serial baseline failed"),
                attempts=max_retries + 1,
            )
            REGISTRY.counter("engine.failed_points").inc()
            continue
        tasks.append((p, base_records[bkey].result))
        task_slots.append(i)

    if tasks:
        # first attempts fan out across the pool; the parent-side fault
        # gate pulls injected failures out of the batch beforehand
        gated: List[Optional[Tuple[str, Any, str]]] = [None] * len(tasks)
        pooled: List[Tuple[SweepPoint, Optional[Dict[str, Any]]]] = []
        pooled_slots: List[int] = []
        from repro.faults.plan import InjectedFault

        for j, (p, bdict) in enumerate(tasks):
            try:
                faults.on_point(p.describe(), 1)
            except InjectedFault as exc:
                gated[j] = ("err", "InjectedFault", str(exc))
                continue
            pooled.append((p, bdict))
            pooled_slots.append(j)
        if pooled:
            outputs = _map_tasks(pooled, njobs, worker=_safe_worker)
            for j, out in zip(pooled_slots, outputs):
                gated[j] = out
        for j, first in enumerate(gated):
            i = task_slots[j]
            p, bdict = tasks[j]
            payload = _run_with_retries(i, p, bdict, first=first)
            if payload is None:
                continue
            records[i] = _observe_record(RunRecord.from_dict(payload))
            _contained_put(keys[i], payload)

    if cache is not None:
        cache.persist_stats()
    survivors = [r for r in records if r is not None]
    if failures:
        REGISTRY.counter("engine.degraded_sweeps").inc()
    return SweepOutcome(
        records=survivors,
        failures=[failures[i] for i in sorted(failures)],
        retries=retries,
    )
