"""Content-addressed on-disk cache of run records.

Every routing run in this repository is deterministic: the circuit
generator, the router, and the simulated MPI runtime are all driven by
explicit seeds, so a run is fully determined by its spec — circuit name,
scale and seed, router and parallel configs, machine model, algorithm,
and processor count.  The cache keys records by a SHA-256 over the
canonical JSON of that spec plus :data:`CODE_SALT`, and stores one JSON
file per record under ``.repro_cache/`` (override with the
``REPRO_CACHE_DIR`` environment variable).

Invalidation rules
------------------
* Any spec change — different seed, scale, config knob, machine, or
  processor count — is a different key; nothing is ever overwritten with
  non-identical content.
* :data:`CODE_SALT` must be bumped whenever a code change alters routed
  quality or modeled time for an unchanged spec (the golden tests in
  ``tests/grid/test_kernel_equivalence.py`` are the tripwire for such
  changes).  Bumping the salt orphans old entries; ``repro cache
  --clear`` removes them.
* A corrupt or truncated cache file is treated as a miss and rewritten.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, Optional, Union

#: Version salt folded into every cache key.  Bump when routing
#: semantics, modeled costs, or the record schema change.
#: v2: run records embed a per-step ``profile`` section.
CODE_SALT = "repro-exec-v2"

#: default cache directory (relative to the current working directory)
DEFAULT_CACHE_DIR = ".repro_cache"

#: sidecar holding lifetime hit/miss/store tallies.  Deliberately not a
#: ``*.json`` name: ``__len__``/``clear`` glob ``*.json`` for records and
#: must never count (or delete) the bookkeeping file.
STATS_FILE = "_stats.meta"

#: lockfile serializing the sidecar's read-modify-write (same non-JSON
#: naming rule as :data:`STATS_FILE`)
STATS_LOCK = "_stats.lock"

#: a lock older than this is presumed left by a dead process and broken
_LOCK_STALE_S = 10.0

#: bounded acquisition: retries × sleep bounds the worst-case wait well
#: under the stale threshold, so two healthy writers always interleave
_LOCK_RETRIES = 200
_LOCK_SLEEP_S = 0.005


class _StatsLock:
    """``O_CREAT|O_EXCL`` lockfile with bounded retry and stale-breaking.

    Advisory and portable (no ``fcntl`` dependency): creation is atomic
    on POSIX and NT, so exactly one process holds the lock at a time.
    A crash between create and unlink leaves a stale file; any waiter
    that sees it older than :data:`_LOCK_STALE_S` removes it and retries.
    Failing to acquire within the retry budget degrades to proceeding
    unlocked — advisory counters must never wedge a sweep — and the
    caller reports whether the lock was actually held.
    """

    def __init__(self, path: Path) -> None:
        self._path = path
        self._held = False

    def acquire(self) -> bool:
        for _ in range(_LOCK_RETRIES):
            try:
                fd = os.open(
                    self._path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644
                )
            except FileExistsError:
                try:
                    age = time.time() - self._path.stat().st_mtime
                except OSError:
                    continue  # holder released between open and stat
                if age > _LOCK_STALE_S:
                    try:
                        self._path.unlink()
                    except OSError:
                        pass
                    continue
                time.sleep(_LOCK_SLEEP_S)
                continue
            except OSError:
                return False  # unwritable root: no serialization possible
            try:
                os.write(fd, str(os.getpid()).encode("ascii"))
            finally:
                os.close(fd)
            self._held = True
            return True
        return False

    def release(self) -> None:
        if self._held:
            self._held = False
            try:
                self._path.unlink()
            except OSError:
                pass

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *_exc: Any) -> None:
        self.release()


def cache_key(spec: Dict[str, Any], salt: str = CODE_SALT) -> str:
    """SHA-256 content address of a run spec.

    The spec must be JSON-serializable; canonical form uses sorted keys
    and compact separators so dict ordering can never split the cache.
    """
    canonical = json.dumps(spec, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(f"{salt}|{canonical}".encode("utf-8")).hexdigest()


class RunCache:
    """A directory of ``<key>.json`` run records with hit/miss counters.

    ``faults`` accepts a :class:`~repro.faults.plan.FaultPlan`; its
    ``on_cache`` hook runs inside :meth:`get` (an injected ``OSError``
    is indistinguishable from a corrupt file: a miss) and at the top of
    :meth:`put` (the error propagates, as a real full-disk write would).
    """

    def __init__(
        self,
        root: Union[str, Path, None] = None,
        faults: Optional[Any] = None,
    ) -> None:
        if root is None:
            root = os.environ.get("REPRO_CACHE_DIR") or DEFAULT_CACHE_DIR
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        if faults is None:
            from repro.faults.plan import NULL_FAULT_PLAN

            faults = NULL_FAULT_PLAN
        self._faults = faults
        # what persist_stats() has already folded into the sidecar, so
        # repeated persists never double-count this instance's tallies
        self._flushed = (0, 0, 0)

    def path_for(self, key: str) -> Path:
        """Where the record for ``key`` lives (whether or not it exists)."""
        return self.root / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored payload for ``key``, or ``None`` on a miss."""
        from repro.obs.metrics import REGISTRY

        path = self.path_for(key)
        try:
            self._faults.on_cache("get")
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            self.misses += 1
            REGISTRY.counter("cache.miss").inc()
            return None
        self.hits += 1
        REGISTRY.counter("cache.hit").inc()
        return payload

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        """Store ``payload`` under ``key`` (atomic rename, last write wins).

        Concurrent writers are safe: determinism means any two writers
        of the same key hold identical content.
        """
        from repro.obs.metrics import REGISTRY

        self._faults.on_cache("put")
        self.root.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, separators=(",", ":"))
            os.replace(tmp, self.path_for(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stores += 1
        REGISTRY.counter("cache.store").inc()

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.json"))

    def clear(self) -> int:
        """Delete every cached record; returns how many were removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    # -- stats ---------------------------------------------------------
    @property
    def _stats_path(self) -> Path:
        return self.root / STATS_FILE

    def lifetime_stats(self) -> Dict[str, int]:
        """Persisted hit/miss/store tallies (zeros when never persisted)."""
        try:
            data = json.loads(self._stats_path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            data = {}
        return {
            "hits": int(data.get("hits", 0)),
            "misses": int(data.get("misses", 0)),
            "stores": int(data.get("stores", 0)),
        }

    def persist_stats(self) -> Dict[str, int]:
        """Fold this instance's tallies into the on-disk sidecar.

        The read-modify-write (load ``lifetime_stats``, add this
        instance's unflushed delta, atomic replace) is serialized with a
        lockfile (:class:`_StatsLock`): concurrent writers — service
        workers, ``--jobs N`` sweeps, parallel CLI invocations — merge
        their deltas instead of last-write-wins dropping each other's
        tallies.  Safe to call repeatedly; only the delta since the last
        persist is added.  If the lock cannot be acquired within its
        bounded retry budget (pathological contention or an unwritable
        root) the fold still happens — one delta racing beats wedging
        the run for advisory counters.
        """
        delta = (
            self.hits - self._flushed[0],
            self.misses - self._flushed[1],
            self.stores - self._flushed[2],
        )
        self.root.mkdir(parents=True, exist_ok=True)
        with _StatsLock(self.root / STATS_LOCK) as locked:
            if not locked:
                from repro.obs.metrics import REGISTRY

                REGISTRY.counter("cache.stats_lock_timeouts").inc()
            # merge against the latest on-disk totals *while holding the
            # lock*, so the window between read and replace is exclusive
            life = self.lifetime_stats()
            life["hits"] += delta[0]
            life["misses"] += delta[1]
            life["stores"] += delta[2]
            fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    json.dump(life, fh, separators=(",", ":"))
                os.replace(tmp, self._stats_path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        self._flushed = (self.hits, self.misses, self.stores)
        return life

    def stats(self) -> Dict[str, Any]:
        """Counters and location, for CLI reporting.

        ``hits``/``misses``/``stores`` are this instance's session
        tallies; ``lifetime`` is the persisted sidecar (which includes
        any deltas already folded in by :meth:`persist_stats`).
        """
        looked_up = self.hits + self.misses
        life = self.lifetime_stats()
        life_lookups = life["hits"] + life["misses"]
        return {
            "root": str(self.root),
            "entries": len(self),
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "hit_rate": (self.hits / looked_up) if looked_up else None,
            "lifetime": life,
            "lifetime_hit_rate": (
                life["hits"] / life_lookups if life_lookups else None
            ),
            "salt": CODE_SALT,
        }
