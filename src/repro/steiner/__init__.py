"""Approximate Steiner trees (TWGR step 1).

TWGR bases each net's route on an approximate rectilinear Steiner tree
derived from the net's minimum spanning tree (paper §2).  This package
provides:

* :func:`prim_mst` — dense-graph Prim over Manhattan distances (the hot
  path; vectorized with NumPy),
* :func:`kruskal_mst` — a reference implementation used for
  cross-validation,
* :class:`NetTree` / :func:`build_net_tree` — the MST-based approximate
  Steiner tree with local Steiner-point refinement,
* :func:`tree_segments` — the tree decomposed into the segments the coarse
  router processes.
"""

from repro.steiner.mst import prim_mst, kruskal_mst, mst_length
from repro.steiner.tree import NetTree, build_net_tree, steinerize
from repro.steiner.tree import tree_segments

__all__ = [
    "prim_mst",
    "kruskal_mst",
    "mst_length",
    "NetTree",
    "build_net_tree",
    "steinerize",
    "tree_segments",
]
