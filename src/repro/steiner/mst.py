"""Minimum spanning trees over net pins (Manhattan metric).

Building these trees is the asymptotically dominant step of TWGR — Prim on
the dense distance graph is :math:`O(p^2)` per net with ``p`` pins — which
is exactly why the paper's pin-number-weight net partition (§5) weights a
net by a power of its pin count.  The implementation vectorizes the inner
relaxation loop with NumPy; a tie-break on (weight, index) keeps results
deterministic and independent of floating-point quirks (all arithmetic is
integer).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.perfmodel.counter import WorkCounter, NULL_COUNTER

Edge = Tuple[int, int]

#: below this terminal count the pure-Python Prim beats the NumPy one —
#: per-round ufunc dispatch overhead exceeds the actual O(n) work.  Both
#: paths produce identical edges (same (weight, index) tie-break) and
#: charge identical work.
SMALL_NET_TERMINALS = 48


def _prim_small(
    x: List[int], y: List[int], counter: WorkCounter
) -> List[Edge]:
    """Pure-Python Prim for small nets; tie-break identical to argmin."""
    n = len(x)
    if n == 2:
        counter.add("steiner", 2)
        return [(0, 1)]
    if n == 3:
        # closed form of the two Prim rounds (same lowest-index-wins
        # tie-breaks, same n*(n-1) charge)
        counter.add("steiner", 6)
        x0, x1, x2 = x
        y0, y1, y2 = y
        d1 = abs(x1 - x0) + abs(y1 - y0)
        d2 = abs(x2 - x0) + abs(y2 - y0)
        d12 = abs(x2 - x1) + abs(y2 - y1)
        if d1 <= d2:
            return [(0, 1), (1, 2) if d12 < d2 else (0, 2)]
        return [(0, 2), (2, 1) if d12 < d1 else (0, 1)]
    INF = 1 << 60  # beyond any real distance; replaces a None sentinel
    best_dist = [INF] * n
    best_parent = [-1] * n
    # out-of-tree indices, ascending — ascending scan + strict < keeps the
    # lowest-index-wins tie-break of the full-array version
    rest = list(range(1, n))
    edges: List[Edge] = []
    current = 0
    # n units per relaxation round, charged in bulk up front (identical
    # total; nothing samples the counter mid-MST)
    counter.add("steiner", n * (n - 1))
    for _ in range(n - 1):
        xc = x[current]
        yc = y[current]
        nxt = -1
        nk = -1
        nd = INF
        for k, i in enumerate(rest):
            d = abs(x[i] - xc) + abs(y[i] - yc)
            bi = best_dist[i]
            if d < bi:
                best_dist[i] = bi = d
                best_parent[i] = current
            if bi < nd:
                nd = bi
                nxt = i
                nk = k
        edges.append((best_parent[nxt], nxt))
        del rest[nk]
        current = nxt
    return edges


def prim_mst(
    coords: np.ndarray,
    row_pitch: int = 1,
    counter: WorkCounter = NULL_COUNTER,
) -> List[Edge]:
    """MST edges of the complete Manhattan-distance graph over ``coords``.

    ``coords`` is an ``(n, 2)`` integer array of ``(x, row)`` positions.
    Returns ``n - 1`` edges as ``(parent_index, child_index)`` pairs, in
    insertion order starting from vertex 0.  Work is charged to the
    counter under the ``"steiner"`` kind, ``n`` units per relaxation round
    (so :math:`O(p^2)` per net, matching the real algorithm's complexity).
    """
    n = len(coords)
    if n <= 1:
        return []
    if n <= SMALL_NET_TERMINALS:
        # accept raw (x, row) pair sequences without a NumPy round trip
        if isinstance(coords, np.ndarray):
            x = coords[:, 0].tolist()
            y = [int(r) * row_pitch for r in coords[:, 1].tolist()]
        else:
            x = [int(p[0]) for p in coords]
            y = [int(p[1]) * row_pitch for p in coords]
        return _prim_small(x, y, counter)
    coords = np.asarray(coords, dtype=np.int64)
    x = coords[:, 0]
    y = coords[:, 1] * row_pitch

    in_tree = np.zeros(n, dtype=bool)
    best_dist = np.full(n, np.iinfo(np.int64).max, dtype=np.int64)
    best_parent = np.full(n, -1, dtype=np.int64)
    edges: List[Edge] = []

    current = 0
    in_tree[0] = True
    for _ in range(n - 1):
        d = np.abs(x - x[current]) + np.abs(y - y[current])
        improved = (d < best_dist) & ~in_tree
        best_dist[improved] = d[improved]
        best_parent[improved] = current
        counter.add("steiner", n)

        masked = np.where(in_tree, np.iinfo(np.int64).max, best_dist)
        nxt = int(np.argmin(masked))  # argmin takes the lowest index on ties
        edges.append((int(best_parent[nxt]), nxt))
        in_tree[nxt] = True
        current = nxt
    return edges


def kruskal_mst(coords: np.ndarray, row_pitch: int = 1) -> List[Edge]:
    """Reference Kruskal MST (union-find over all pairs), for tests.

    Deterministic tie-break by ``(weight, i, j)``; the resulting edge *set*
    may differ from Prim's when ties exist, but the total length never
    does.
    """
    coords = np.asarray(coords, dtype=np.int64)
    n = len(coords)
    if n <= 1:
        return []
    pairs: List[Tuple[int, int, int]] = []
    for i in range(n):
        for j in range(i + 1, n):
            w = abs(int(coords[i, 0] - coords[j, 0])) + row_pitch * abs(
                int(coords[i, 1] - coords[j, 1])
            )
            pairs.append((w, i, j))
    pairs.sort()

    parent = list(range(n))

    def find(a: int) -> int:
        while parent[a] != a:
            parent[a] = parent[parent[a]]
            a = parent[a]
        return a

    edges: List[Edge] = []
    for w, i, j in pairs:
        ri, rj = find(i), find(j)
        if ri != rj:
            parent[ri] = rj
            edges.append((i, j))
            if len(edges) == n - 1:
                break
    return edges


def mst_length(coords: np.ndarray, edges: List[Edge], row_pitch: int = 1) -> int:
    """Total Manhattan length of an edge list over ``coords``."""
    coords = np.asarray(coords, dtype=np.int64)
    total = 0
    for i, j in edges:
        total += abs(int(coords[i, 0] - coords[j, 0])) + row_pitch * abs(
            int(coords[i, 1] - coords[j, 1])
        )
    return total
