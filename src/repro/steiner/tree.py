"""MST-based approximate Steiner trees and their segment decomposition.

TWGR's step 1 builds "an approximate Steiner tree ... based on the minimum
spanning tree of this net" (paper §2, following Lee & Sechen).  We realize
that as: Prim MST over the net's terminals, followed by a local
Steiner-point refinement — for every tree vertex with two or more
neighbours, the rectilinear median of the vertex and a neighbour pair is
inserted as a Steiner point whenever it shortens the tree.

The tree is then cut into :class:`~repro.geometry.Segment` objects.  A
*flat* segment (horizontal or vertical) is already routable; a *diagonal*
segment is later bent into one of two L shapes by the coarse router
(step 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

import numpy as np

from repro.geometry import Point, Segment, manhattan
from repro.perfmodel.counter import WorkCounter, NULL_COUNTER
from repro.steiner.mst import prim_mst


@dataclass(slots=True)
class NetTree:
    """An approximate Steiner tree for one net.

    ``points[i]`` is a tree vertex; indices below ``num_terminals`` are the
    net's terminals in their original order, the rest are Steiner points.
    ``edges`` are index pairs into ``points``.
    """

    net: int
    points: List[Point]
    edges: List[Tuple[int, int]]
    num_terminals: int

    def length(self, row_pitch: int = 1) -> int:
        """Total Manhattan length of the tree's edges."""
        return sum(
            manhattan(self.points[i], self.points[j], row_pitch) for i, j in self.edges
        )

    def degree_of(self, vertex: int) -> int:
        """Number of tree edges incident to ``vertex``."""
        return sum(1 for i, j in self.edges if i == vertex or j == vertex)

    def neighbors(self, vertex: int) -> List[int]:
        """Vertices adjacent to ``vertex`` in the tree."""
        out = []
        for i, j in self.edges:
            if i == vertex:
                out.append(j)
            elif j == vertex:
                out.append(i)
        return out

    def is_connected(self) -> bool:
        """Spanning-tree check used by tests and the parallel validators."""
        n = len(self.points)
        if n == 0:
            return True
        if len(self.edges) != n - 1:
            return False
        adj: Dict[int, List[int]] = {}
        for i, j in self.edges:
            adj.setdefault(i, []).append(j)
            adj.setdefault(j, []).append(i)
        seen: Set[int] = {0}
        stack = [0]
        while stack:
            v = stack.pop()
            for w in adj.get(v, ()):
                if w not in seen:
                    seen.add(w)
                    stack.append(w)
        return len(seen) == n


def build_net_tree(
    net_id: int,
    terminals: Sequence[Point],
    row_pitch: int = 1,
    refine: bool = True,
    counter: WorkCounter = NULL_COUNTER,
) -> NetTree:
    """Build the approximate Steiner tree over ``terminals``.

    Duplicate terminal positions are kept (they become zero-length edges),
    so terminal indices always map 1:1 onto the caller's pin list.
    """
    if terminals and type(terminals[0]) is Point:
        points = list(terminals)  # already canonical — skip the re-wrap
    else:
        points = [Point(int(p[0]), int(p[1])) for p in terminals]
    n = len(points)
    if n < 2:
        return NetTree(net=net_id, points=points, edges=[], num_terminals=n)
    if n == 2:
        # two-terminal net: the MST is the single edge; charge what the
        # one Prim relaxation round would have (2 units) and skip it
        counter.add("steiner", 2)
        return NetTree(net=net_id, points=points, edges=[(0, 1)], num_terminals=2)
    if n == 3:
        return _three_terminal_tree(net_id, points, row_pitch, refine, counter)
    # prim_mst returns a fresh list and ``points`` is owned here, so the
    # tree can take both without defensive copies
    edges = prim_mst(points, row_pitch=row_pitch, counter=counter)
    tree = NetTree(net=net_id, points=points, edges=edges, num_terminals=n)
    if refine and n >= 3:
        steinerize(tree, row_pitch=row_pitch, counter=counter)
    return tree


def _three_terminal_tree(
    net_id: int,
    points: List[Point],
    row_pitch: int,
    refine: bool,
    counter: WorkCounter,
) -> NetTree:
    """Closed form of ``prim_mst`` + ``steinerize`` for three terminals.

    Reproduces the generic pipeline exactly — same edges in the same
    order (Prim's lowest-index-wins tie-breaks decide which terminal is
    the tree center and the center's neighbour order decides the refined
    edge order), same Steiner point, same work-charge totals.  The
    refinement is single-shot because the component-wise median ``m`` of
    three points lies inside every pair's bounding box, so no pair at the
    inserted center can improve further.
    """
    (x0, r0), (x1, r1), (x2, r2) = points
    d1 = abs(x1 - x0) + row_pitch * abs(r1 - r0)
    d2 = abs(x2 - x0) + row_pitch * abs(r2 - r0)
    d12 = abs(x2 - x1) + row_pitch * abs(r2 - r1)
    if d1 <= d2:
        if d12 < d2:
            edges = [(0, 1), (1, 2)]
            c, a, b = 1, 0, 2
        else:
            edges = [(0, 1), (0, 2)]
            c, a, b = 0, 1, 2
    else:
        if d12 < d1:
            edges = [(0, 2), (2, 1)]
            c, a, b = 2, 0, 1
        else:
            edges = [(0, 2), (0, 1)]
            c, a, b = 0, 2, 1
    if not refine:
        counter.add("steiner", 6)  # the two Prim relaxation rounds
        return NetTree(net=net_id, points=points, edges=edges, num_terminals=3)
    cx, cr = points[c]
    ax, ar = points[a]
    bx, br = points[b]
    # component-wise median of (center, a, b) — the optimal meeting point
    if cx < ax:
        mx = ax if ax < bx else (bx if cx < bx else cx)
    else:
        mx = cx if cx < bx else (bx if ax < bx else ax)
    if cr < ar:
        mr = ar if ar < br else (br if cr < br else cr)
    else:
        mr = cr if cr < br else (br if ar < br else ar)
    if mx == cx and mr == cr:
        # no gain anywhere: Prim (6) + steinerize visits (1 + 1 + [2+1])
        counter.add("steiner", 11)
        return NetTree(net=net_id, points=points, edges=edges, num_terminals=3)
    # Prim (6) + visits incl. the center's re-visit and the new point's
    # gainless 3-pair scan (1 + 1 + [2+1] + 1 + [3+3])
    counter.add("steiner", 18)
    points.append(Point(mx, mr))
    return NetTree(
        net=net_id, points=points,
        edges=[(c, 3), (3, a), (3, b)], num_terminals=3,
    )


def steinerize(tree: NetTree, row_pitch: int = 1, counter: WorkCounter = NULL_COUNTER) -> int:
    """Insert Steiner points where they shorten the tree; returns the gain.

    For each vertex ``v`` with neighbours ``a, b``: the component-wise
    median of ``(v, a, b)`` is the optimal meeting point for the two edges;
    if it differs from all three, replacing edges ``(v,a), (v,b)`` with
    ``(v,m), (m,a), (m,b)`` saves wirelength.  One pass in deterministic
    vertex order; pairs re-evaluated greedily.
    """
    saved_total = 0
    points = tree.points
    edges = tree.edges
    # Adjacency lists mirror edge-scan order, so ``adj[v]`` is always
    # exactly ``tree.neighbors(v)`` — maintained in tandem with the edge
    # list below instead of rescanning all edges per vertex visit.
    adj: Dict[int, List[int]] = {}
    for i, j in edges:
        adj.setdefault(i, []).append(j)
        if j != i:
            adj.setdefault(j, []).append(i)
    counter_add = counter.add
    v = 0
    while v < len(points):
        improved = True
        while improved:
            improved = False
            nbrs = adj.get(v, [])
            deg = len(nbrs)
            if deg < 2:
                counter_add("steiner", deg)
                break
            # one fused charge for the visit (deg) plus the pair scan
            # below (deg choose 2) — exact: all charges are multiples of
            # 0.5 far below float precision, so the total is identical
            counter_add("steiner", deg + deg * (deg - 1) / 2)
            vx, vr = points[v]
            best_gain = 0
            best: Tuple[int, int, Point] | None = None
            if deg == 2:  # the dominant case: one pair, no loop machinery
                a, b = nbrs
                ax, ar = points[a]
                bx, br = points[b]
                if vx < ax:
                    mx = ax if ax < bx else (bx if vx < bx else vx)
                else:
                    mx = vx if vx < bx else (bx if ax < bx else ax)
                if vr < ar:
                    mr = ar if ar < br else (br if vr < br else vr)
                else:
                    mr = vr if vr < br else (br if ar < br else ar)
                old = (
                    abs(vx - ax) + abs(vx - bx)
                    + row_pitch * (abs(vr - ar) + abs(vr - br))
                )
                new = (
                    abs(vx - mx)
                    + abs(mx - ax)
                    + abs(mx - bx)
                    + row_pitch * (abs(vr - mr) + abs(mr - ar) + abs(mr - br))
                )
                if old > new:
                    best_gain = old - new
                    best = (a, b, Point(mx, mr))
            else:
                for ai in range(deg):
                    a = nbrs[ai]
                    ax, ar = points[a]
                    dva = abs(vx - ax) + row_pitch * abs(vr - ar)
                    for bi in range(ai + 1, deg):
                        b = nbrs[bi]
                        bx, br = points[b]
                        # median of three via branches (hot inner loop)
                        if vx < ax:
                            mx = ax if ax < bx else (bx if vx < bx else vx)
                        else:
                            mx = vx if vx < bx else (bx if ax < bx else ax)
                        if vr < ar:
                            mr = ar if ar < br else (br if vr < br else vr)
                        else:
                            mr = vr if vr < br else (br if ar < br else ar)
                        old = dva + abs(vx - bx) + row_pitch * abs(vr - br)
                        new = (
                            abs(vx - mx)
                            + abs(mx - ax)
                            + abs(mx - bx)
                            + row_pitch * (abs(vr - mr) + abs(mr - ar) + abs(mr - br))
                        )
                        gain = old - new
                        if gain > best_gain:
                            best_gain = gain
                            best = (a, b, Point(mx, mr))
            if best is None:
                break
            a, b, m = best
            m_idx = len(points)
            points.append(m)
            for idx in range(len(edges) - 1, -1, -1):
                e = edges[idx]
                if e == (v, a) or e == (a, v) or e == (v, b) or e == (b, v):
                    del edges[idx]
            edges.append((v, m_idx))
            edges.append((m_idx, a))
            edges.append((m_idx, b))
            adj[v] = [w for w in adj[v] if w != a and w != b] + [m_idx]
            adj[a] = [w for w in adj[a] if w != v] + [m_idx]
            adj[b] = [w for w in adj[b] if w != v] + [m_idx]
            adj[m_idx] = [v, a, b]
            saved_total += best_gain
            improved = True
        v += 1
    return saved_total


def _median(a: int, b: int, c: int) -> int:
    return sorted((a, b, c))[1]


def tree_segments(tree: NetTree) -> List[Segment]:
    """The tree's edges as canonical segments, zero-length edges dropped."""
    out: List[Segment] = []
    for i, j in tree.edges:
        a, b = tree.points[i], tree.points[j]
        if a == b:
            continue
        out.append(Segment.make(a, b))
    return out


def clip_tree_to_rows(
    tree: NetTree, row_lo: int, row_hi: int
) -> List[Segment]:
    """Segments of ``tree`` restricted to rows ``[row_lo, row_hi]``.

    Used by the row-wise parallel algorithm: a rank keeps the portions of
    whole-net trees that fall inside its row block (the crossing points
    having been materialized as fake pins).  Diagonal segments are split at
    block boundaries along their vertical extent, pinning the crossing at
    the segment's *lower endpoint column* — the same convention
    :func:`repro.parallel.fakepins.crossing_points` uses, so fake pins and
    clipped segments always agree.

    Cut endpoints are *phantoms* placed one row beyond the block: a wire
    continuing past the boundary still passes **through** the boundary
    rows, so they must keep demanding feedthroughs.  With phantoms, the
    union of the clipped pieces' interior rows across all blocks equals
    the original segment's interior rows exactly — parallel runs plan the
    same feedthroughs the serial router would.  The coarse grid clips the
    phantom rows back to its own window.
    """
    out: List[Segment] = []
    for seg in tree_segments(tree):
        lo, hi = seg.row_span
        if hi < row_lo or lo > row_hi:
            continue
        if lo >= row_lo and hi <= row_hi:
            out.append(seg)
            continue
        # The segment sticks out of the block: clip its vertical extent.
        # The vertical run is at the lower endpoint's column by convention.
        bottom, top = (seg.a, seg.b) if seg.a.row <= seg.b.row else (seg.b, seg.a)
        run_x = bottom.x
        p_low = bottom if bottom.row >= row_lo else Point(run_x, row_lo - 1)
        p_high = top if top.row <= row_hi else Point(run_x, row_hi + 1)
        if p_low == p_high:
            continue
        out.append(Segment.make(p_low, p_high))
    return out
