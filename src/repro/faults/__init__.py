"""Fault injection and failure containment.

The paper's Table 5 contains literal "timeout" cells — parallel runs
that died on the Paragon.  This package gives the reproduction the
discipline to study such failures on purpose:

* :mod:`repro.faults.plan` — :class:`FaultPlan`, a seeded, fully
  deterministic schedule of injected faults (rank crashes at step
  boundaries, message delay/reorder within tag-legal bounds, slow-rank
  clock perturbation, transient cache I/O errors, transiently failing
  sweep points).  :data:`NULL_FAULT_PLAN` is the identity off-switch.
* :mod:`repro.faults.report` — :class:`RunFailure`, the structured
  post-mortem :func:`~repro.mpi.runtime.run_spmd` attaches to the
  :class:`~repro.mpi.runtime.RankError` it raises.
* :mod:`repro.faults.named` — the named plans behind ``repro chaos``.

Containment contract: with :data:`NULL_FAULT_PLAN` every hook is a
no-op and all routed metrics are bit-identical to a build without this
package; with a seeded plan, two runs produce identical fault
schedules, identical reports, and identical surviving results
(``tests/faults/`` enforces both).
"""

from repro.faults.named import NAMED_PLANS, make_plan
from repro.faults.plan import (
    ALL_RANKS,
    CacheIOFault,
    CrashFault,
    FaultPlan,
    InjectedFault,
    MessageDelayFault,
    NULL_FAULT_PLAN,
    NullFaultPlan,
    PointFault,
    ReorderFault,
    SlowRankFault,
)
from repro.faults.report import RankFailure, RunFailure

__all__ = [
    "ALL_RANKS",
    "CacheIOFault",
    "CrashFault",
    "FaultPlan",
    "InjectedFault",
    "MessageDelayFault",
    "NAMED_PLANS",
    "NULL_FAULT_PLAN",
    "NullFaultPlan",
    "PointFault",
    "RankFailure",
    "ReorderFault",
    "RunFailure",
    "SlowRankFault",
    "make_plan",
]
