"""Structured failure-containment reports for SPMD runs.

When a rank program raises, :func:`~repro.mpi.runtime.run_spmd` no
longer surfaces only a wrapped exception: the :class:`RankError` it
raises carries a :class:`RunFailure` — which rank originated the abort,
inside which step span, how every other rank went down, and which
user-tag messages were sitting undelivered in the mailboxes when the run
died.  That is the difference between the paper's bare "timeout" cells
(Table 5) and a diagnosable post-mortem.

Determinism note: originating-rank fields (rank, step, error) and
per-rank outcome kinds are scheduling-independent for deterministic
programs.  Step attribution for *propagated* aborts is not — the abort
can catch a sibling rank anywhere between two blocking calls — so
propagated entries deliberately record ``step=None`` rather than a
racy value, keeping seeded replays bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple


@dataclass(slots=True)
class RankFailure:
    """How one rank ended: ``crashed`` (originated), ``aborted``
    (released by another rank's failure), or ``ok``."""

    rank: int
    kind: str
    step: Optional[str] = None
    error_type: Optional[str] = None
    message: Optional[str] = None
    injected: bool = False

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form."""
        return {
            "rank": self.rank,
            "kind": self.kind,
            "step": self.step,
            "error_type": self.error_type,
            "message": self.message,
            "injected": self.injected,
        }


@dataclass(slots=True)
class RunFailure:
    """Post-mortem of one aborted SPMD run."""

    nprocs: int
    failed_rank: int
    step: Optional[str]
    error_type: str
    message: str
    injected: bool
    ranks: List[RankFailure] = field(default_factory=list)
    #: rank -> undelivered user-tag ``(src, tag)`` pairs at abort time
    pending: Dict[int, List[Tuple[int, int]]] = field(default_factory=dict)

    @property
    def crashed_ranks(self) -> List[int]:
        """Ranks that originated a failure (usually exactly one)."""
        return [r.rank for r in self.ranks if r.kind == "crashed"]

    @property
    def aborted_ranks(self) -> List[int]:
        """Ranks released from blocking calls by the abort."""
        return [r.rank for r in self.ranks if r.kind == "aborted"]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form (scheduling-independent fields only)."""
        return {
            "nprocs": self.nprocs,
            "failed_rank": self.failed_rank,
            "step": self.step,
            "error_type": self.error_type,
            "message": self.message,
            "injected": self.injected,
            "ranks": [r.to_dict() for r in self.ranks],
            "pending": {
                str(rank): [list(p) for p in pairs]
                for rank, pairs in sorted(self.pending.items())
            },
        }

    def render(self) -> str:
        """Human-readable containment report."""
        origin = "injected fault" if self.injected else "rank failure"
        lines = [
            f"SPMD run failed: {origin} on rank {self.failed_rank}"
            + (f" in {self.step}" if self.step else ""),
            f"  error     : {self.error_type}: {self.message}",
            f"  ranks     : {self.nprocs} total, "
            f"{len(self.crashed_ranks)} crashed, "
            f"{len(self.aborted_ranks)} released with RankError",
        ]
        for r in self.ranks:
            if r.kind == "ok":
                continue
            where = f" in {r.step}" if r.step else ""
            err = f" ({r.error_type}: {r.message})" if r.kind == "crashed" else ""
            lines.append(f"    rank {r.rank}: {r.kind}{where}{err}")
        if self.pending:
            lines.append("  undelivered user messages at abort:")
            for rank, pairs in sorted(self.pending.items()):
                pretty = ", ".join(f"(src={s}, tag={t})" for s, t in pairs)
                lines.append(f"    rank {rank} mailbox: {pretty}")
        else:
            lines.append("  undelivered user messages at abort: none")
        return "\n".join(lines)
