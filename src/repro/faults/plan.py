"""Seeded, deterministic fault plans.

A :class:`FaultPlan` is the single source of injected failure in this
repository: the SPMD runtime, the communicator, the run cache, and the
sweep engine all consult it through narrow hooks, and the default
:class:`NullFaultPlan` makes every hook an identity so fault-free runs
pay (and change) nothing — the same off-switch discipline as
:class:`~repro.obs.tracer.NullTracer`.

Determinism contract: every injection decision for rank *r* is a pure
function of ``(seed, r, r's own event index)``.  Each rank consumes its
own seeded RNG stream in program order, so two runs of the same plan
produce identical per-rank fault schedules regardless of thread
scheduling.  Decisions keyed on cross-rank arrival order (which *is*
scheduling-dependent) are deliberately avoided — message holds, for
example, are chosen from the sender's stream, not the receiver's.

Fault kinds
-----------
* :class:`CrashFault` — a rank raises :class:`InjectedFault` on entering
  a named step span (the Paragon "timeout" rows of Table 5 died exactly
  like this: one node, mid-step).
* :class:`MessageDelayFault` — every Nth send from a rank charges extra
  modeled seconds, so the matching receive completes later on the
  logical clock (a slow link).
* :class:`ReorderFault` — every Nth message from a rank is held in the
  mailbox and released late, within tag-legal bounds: per-``(src, tag)``
  FIFO order is never violated, matching MPI's non-overtaking rule.
* :class:`SlowRankFault` — one rank's logical clock runs slow (compute
  charges are multiplied), modeling a straggler node.
* :class:`CacheIOFault` — the first N run-cache reads/writes raise
  ``OSError``, modeling a flaky filesystem.
* :class:`PointFault` — a sweep point fails its first N attempts with
  :class:`InjectedFault`, exercising the engine's retry/salvage path.
"""

from __future__ import annotations

import random
import threading
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple


class InjectedFault(RuntimeError):
    """A failure raised on purpose by a :class:`FaultPlan`."""

    def __init__(self, message: str, rank: Optional[int] = None,
                 step: Optional[str] = None) -> None:
        super().__init__(message)
        self.rank = rank
        self.step = step


#: sentinel meaning "applies to every rank"
ALL_RANKS = -1


@dataclass(frozen=True, slots=True)
class CrashFault:
    """Rank ``rank`` raises on entering the span named ``step``.

    ``step`` is any span name the rank program opens (``step1_steiner``
    … ``step5_switch``); the runtime's own ``"rank"`` span crashes the
    rank before it executes anything.
    """

    rank: int
    step: str = "step3_feedthrough"


@dataclass(frozen=True, slots=True)
class MessageDelayFault:
    """Every ``every``-th send from ``rank`` is delayed on the clock.

    The delay is drawn uniformly from ``(0, max_delay_s]`` using the
    sender's seeded stream, charged as communication time before the
    message is stamped — receivers idle correspondingly longer.
    """

    rank: int = ALL_RANKS
    every: int = 5
    max_delay_s: float = 0.002


@dataclass(frozen=True, slots=True)
class ReorderFault:
    """Every ``every``-th message from ``rank`` is held back.

    A held message is released after ``hold`` further deliveries to its
    destination, when a later message with the same ``(src, tag)``
    arrives (non-overtaking), or when its receiver asks for it —
    reordering can therefore never manufacture a deadlock.
    """

    rank: int = ALL_RANKS
    every: int = 7
    hold: int = 2


@dataclass(frozen=True, slots=True)
class SlowRankFault:
    """Rank ``rank``'s compute charges run ``factor``× slower."""

    rank: int
    factor: float = 4.0


@dataclass(frozen=True, slots=True)
class CacheIOFault:
    """The first ``fail_times`` cache ``op``s raise ``OSError``.

    ``op`` is ``"get"``, ``"put"``, or ``"both"``.  Transient by
    construction: once the budget is spent the cache behaves normally.
    """

    op: str = "both"
    fail_times: int = 2


@dataclass(frozen=True, slots=True)
class PointFault:
    """A sweep point whose label contains ``match`` fails its first
    ``fail_times`` attempts."""

    match: str
    fail_times: int = 1


_FAULT_KINDS = (
    CrashFault, MessageDelayFault, ReorderFault, SlowRankFault,
    CacheIOFault, PointFault,
)


class _RankStream:
    """One rank's deterministic injection state (single-writer)."""

    __slots__ = ("rng", "send_seq", "fired")

    def __init__(self, seed: int, rank: int) -> None:
        self.rng = random.Random(f"{seed}:{rank}:faults")
        self.send_seq = 0
        self.fired: List[str] = []


class FaultPlan:
    """A seeded schedule of injected faults.

    One plan drives one run at a time: :meth:`begin_run` (called by
    :func:`~repro.mpi.runtime.run_spmd` and the chaos CLI) resets the
    per-run streams, so replaying the same plan object is bit-identical
    to a fresh plan with the same seed and faults.
    """

    def __init__(self, seed: int = 0, faults: Sequence[Any] = ()) -> None:
        for f in faults:
            if not isinstance(f, _FAULT_KINDS):
                raise TypeError(f"not a fault spec: {f!r}")
        self.seed = seed
        self.faults: Tuple[Any, ...] = tuple(faults)
        self._crash = [f for f in self.faults if isinstance(f, CrashFault)]
        self._delay = [f for f in self.faults if isinstance(f, MessageDelayFault)]
        self._reorder = [f for f in self.faults if isinstance(f, ReorderFault)]
        self._slow = [f for f in self.faults if isinstance(f, SlowRankFault)]
        self._cache = [f for f in self.faults if isinstance(f, CacheIOFault)]
        self._point = [f for f in self.faults if isinstance(f, PointFault)]
        self._streams: List[_RankStream] = []
        self._cache_lock = threading.Lock()
        self._cache_seq: Dict[str, int] = {"get": 0, "put": 0}
        self._cache_fired: List[str] = []
        self._point_fired: List[str] = []
        self.begin_run(0)

    # -- lifecycle -----------------------------------------------------
    def begin_run(self, nprocs: int) -> None:
        """Reset per-run state for a run of ``nprocs`` ranks."""
        self._streams = [_RankStream(self.seed, r) for r in range(nprocs)]
        self._cache_seq = {"get": 0, "put": 0}
        self._cache_fired = []
        self._point_fired = []

    def _stream(self, rank: int) -> _RankStream:
        # ranks outside the declared run (e.g. cache-only use) get
        # streams lazily so hooks never fail on size mismatches
        while rank >= len(self._streams):
            self._streams.append(_RankStream(self.seed, len(self._streams)))
        return self._streams[rank]

    @staticmethod
    def _counter(name: str):
        from repro.obs.metrics import REGISTRY

        return REGISTRY.counter(name)

    # -- runtime hooks -------------------------------------------------
    def on_step(self, rank: int, step: str) -> None:
        """Called by the runtime when ``rank`` enters span ``step``."""
        for f in self._crash:
            if f.rank == rank and f.step == step:
                self._stream(rank).fired.append(f"crash@{step}")
                self._counter("faults.crash").inc()
                raise InjectedFault(
                    f"injected crash: rank {rank} at {step}", rank=rank, step=step
                )

    def send_delay(self, rank: int, dest: int, tag: int, nbytes: int) -> float:
        """Extra modeled seconds charged to ``rank`` for this send."""
        stream = self._stream(rank)
        stream.send_seq += 1
        extra = 0.0
        for f in self._delay:
            if f.rank in (rank, ALL_RANKS) and stream.send_seq % f.every == 0:
                delay = stream.rng.uniform(0.0, f.max_delay_s)
                stream.fired.append(f"delay#{stream.send_seq}={delay:.6f}")
                self._counter("faults.delay").inc()
                extra += delay
        return extra

    def deliver_hold(self, src: int, dest: int, tag: int) -> int:
        """Deliveries to hold this message for (0 = deliver normally).

        Keyed on the *sender's* event stream (``send_delay`` advanced it
        just before delivery), so the schedule is scheduling-independent.
        """
        stream = self._stream(src)
        for f in self._reorder:
            if f.rank in (src, ALL_RANKS) and stream.send_seq % f.every == 0:
                stream.fired.append(f"hold#{stream.send_seq}x{f.hold}")
                self._counter("faults.reorder").inc()
                return f.hold
        return 0

    def compute_factor(self, rank: int) -> float:
        """Slowdown multiplier for ``rank``'s logical clock (1.0 = none)."""
        factor = 1.0
        for f in self._slow:
            if f.rank in (rank, ALL_RANKS):
                factor *= f.factor
        if factor != 1.0:
            self._stream(rank).fired.append(f"slow x{factor:g}")
            self._counter("faults.slow_rank").inc()
        return factor

    # -- cache / engine hooks -------------------------------------------
    def on_cache(self, op: str) -> None:
        """Called by :class:`~repro.exec.cache.RunCache` before I/O."""
        if not self._cache:
            return
        with self._cache_lock:
            self._cache_seq[op] = self._cache_seq.get(op, 0) + 1
            for f in self._cache:
                if f.op not in (op, "both"):
                    continue
                spent = sum(
                    1 for e in self._cache_fired
                    if f.op == "both" or e.startswith(op)
                )
                if spent < f.fail_times:
                    self._cache_fired.append(f"{op}#{self._cache_seq[op]}")
                    self._counter("faults.cache_io").inc()
                    raise OSError(f"injected cache {op} error ({spent + 1}/{f.fail_times})")

    def on_point(self, label: str, attempt: int) -> None:
        """Called by the sweep engine before attempt ``attempt`` (1-based)."""
        for f in self._point:
            if f.match in label and attempt <= f.fail_times:
                self._point_fired.append(f"{label}@attempt{attempt}")
                self._counter("faults.point").inc()
                raise InjectedFault(
                    f"injected point failure: {label} "
                    f"(attempt {attempt}/{f.fail_times})"
                )

    # -- introspection --------------------------------------------------
    def fired(self) -> Dict[str, List[str]]:
        """Per-rank (plus ``"cache"``) injection logs.

        Each rank's list is in that rank's program order, so two runs of
        the same seeded plan produce equal dicts — the replay test's
        definition of "identical fault schedules".
        """
        out: Dict[str, List[str]] = {
            f"rank{r}": list(s.fired)
            for r, s in enumerate(self._streams) if s.fired
        }
        if self._cache_fired:
            out["cache"] = list(self._cache_fired)
        if self._point_fired:
            out["engine"] = list(self._point_fired)
        return out

    def describe(self) -> Dict[str, Any]:
        """JSON-safe description of the plan (seed + fault specs)."""
        return {
            "seed": self.seed,
            "faults": [
                {"kind": type(f).__name__, **asdict(f)} for f in self.faults
            ],
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kinds = ", ".join(type(f).__name__ for f in self.faults) or "empty"
        return f"FaultPlan(seed={self.seed}, {kinds})"


class NullFaultPlan:
    """Injects nothing; the identity off-switch (cf. ``NullTracer``)."""

    __slots__ = ()

    seed = None
    faults: Tuple[Any, ...] = ()

    def begin_run(self, nprocs: int) -> None:
        """No-op."""

    def on_step(self, rank: int, step: str) -> None:
        """No-op."""

    def send_delay(self, rank: int, dest: int, tag: int, nbytes: int) -> float:
        """No delay."""
        return 0.0

    def deliver_hold(self, src: int, dest: int, tag: int) -> int:
        """Never hold."""
        return 0

    def compute_factor(self, rank: int) -> float:
        """No slowdown."""
        return 1.0

    def on_cache(self, op: str) -> None:
        """No-op."""

    def on_point(self, label: str, attempt: int) -> None:
        """No-op."""

    def fired(self) -> Dict[str, List[str]]:
        """Nothing ever fires."""
        return {}

    def describe(self) -> Dict[str, Any]:
        """The empty plan."""
        return {"seed": None, "faults": []}


#: Shared no-op plan (the default everywhere).
NULL_FAULT_PLAN = NullFaultPlan()
