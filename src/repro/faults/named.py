"""Named fault plans for the ``repro chaos`` CLI.

Each entry is a factory ``(nprocs, seed) -> FaultPlan`` so the same
plan name scales to any rank count while staying fully seeded: which
rank crashes (or runs slow) is ``seed % nprocs``, delay magnitudes come
from the plan's seeded streams, and two invocations with the same seed
replay bit-identically.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.faults.plan import (
    CacheIOFault,
    CrashFault,
    FaultPlan,
    MessageDelayFault,
    NullFaultPlan,
    PointFault,
    ReorderFault,
    SlowRankFault,
)

PlanFactory = Callable[[int, int], object]


def _none(nprocs: int, seed: int) -> NullFaultPlan:
    return NullFaultPlan()


def _crash_startup(nprocs: int, seed: int) -> FaultPlan:
    # the runtime's own "rank" span opens before the program body runs
    return FaultPlan(seed, (CrashFault(rank=seed % nprocs, step="rank"),))


def _crash_step(step: str) -> PlanFactory:
    def make(nprocs: int, seed: int) -> FaultPlan:
        return FaultPlan(seed, (CrashFault(rank=seed % nprocs, step=step),))

    return make


def _message_delay(nprocs: int, seed: int) -> FaultPlan:
    return FaultPlan(seed, (MessageDelayFault(every=4, max_delay_s=0.005),))


def _reorder(nprocs: int, seed: int) -> FaultPlan:
    return FaultPlan(seed, (ReorderFault(every=5, hold=3),))


def _slow_rank(nprocs: int, seed: int) -> FaultPlan:
    return FaultPlan(seed, (SlowRankFault(rank=seed % nprocs, factor=4.0),))


def _flaky_cache(nprocs: int, seed: int) -> FaultPlan:
    return FaultPlan(seed, (CacheIOFault(op="both", fail_times=3),))


def _flaky_point(nprocs: int, seed: int) -> FaultPlan:
    # matches every point label; engine retries make it transient
    return FaultPlan(seed, (PointFault(match="", fail_times=1),))


def _mixed(nprocs: int, seed: int) -> FaultPlan:
    return FaultPlan(
        seed,
        (
            MessageDelayFault(every=6, max_delay_s=0.003),
            ReorderFault(every=9, hold=2),
            SlowRankFault(rank=seed % nprocs, factor=2.0),
        ),
    )


#: name -> factory(nprocs, seed); ``repro chaos --plan <name>``
NAMED_PLANS: Dict[str, PlanFactory] = {
    "none": _none,
    "crash-startup": _crash_startup,
    "crash-step1": _crash_step("step1_steiner"),
    "crash-step3": _crash_step("step3_feedthrough"),
    "crash-step5": _crash_step("step5_switch"),
    "message-delay": _message_delay,
    "reorder": _reorder,
    "slow-rank": _slow_rank,
    "flaky-cache": _flaky_cache,
    "flaky-point": _flaky_point,
    "mixed": _mixed,
}


def make_plan(name: str, nprocs: int, seed: int):
    """Instantiate the named plan for a run of ``nprocs`` ranks."""
    try:
        factory = NAMED_PLANS[name]
    except KeyError:
        raise ValueError(
            f"unknown fault plan {name!r}; choose from {sorted(NAMED_PLANS)}"
        ) from None
    return factory(nprocs, seed)
