#!/usr/bin/env python
"""The paper's core experiment: all three parallel algorithms head-to-head.

Routes one circuit with the row-wise (§4), net-wise (§5) and hybrid (§6)
pin partition algorithms across processor counts, printing scaled track
quality and modeled speedups — a one-circuit version of the paper's
Tables 2–4 and Figures 4–6.

Run:  python examples/compare_algorithms.py [circuit] [scale]
      e.g. python examples/compare_algorithms.py biomed 0.15
"""

import sys

from repro import RouterConfig, SPARCCENTER_1000, mcnc, route_parallel
from repro.analysis import Table
from repro.parallel.driver import serial_baseline

PROCS = (1, 2, 4, 8)
ALGORITHMS = ("rowwise", "netwise", "hybrid")


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "primary2"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.15

    circuit = mcnc.generate(name, scale=scale, seed=1)
    config = RouterConfig(seed=1)
    print(f"circuit: {circuit}\n")

    base = serial_baseline(circuit, config, machine=SPARCCENTER_1000)
    print(f"serial: {base.total_tracks} tracks, {base.model_time:.1f} s modeled\n")

    quality = Table(
        title=f"Scaled tracks on {circuit.name}",
        columns=["algorithm"] + [f"{p} proc" for p in PROCS],
    )
    speed = Table(
        title=f"Modeled speedup on {circuit.name} ({SPARCCENTER_1000.name})",
        columns=["algorithm"] + [f"{p} proc" for p in PROCS],
    )
    for algo in ALGORITHMS:
        q_row, s_row = [algo], [algo]
        for p in PROCS:
            run = route_parallel(
                circuit, algorithm=algo, nprocs=p,
                machine=SPARCCENTER_1000, config=config, baseline=base,
            )
            q_row.append(run.scaled_tracks)
            s_row.append(run.speedup)
        quality.add_row(*q_row)
        speed.add_row(*s_row)

    print(quality.render())
    print()
    print(speed.render())
    print(
        "\nExpected shape (paper §7–§8): hybrid best quality, row-wise"
        "\nfastest, net-wise worst on both axes."
    )


if __name__ == "__main__":
    main()
