#!/usr/bin/env python
"""Build a circuit from scratch through the public API and inspect the route.

Constructs a small hand-designed standard-cell circuit with
:class:`CircuitBuilder` — a datapath-like block with vertical buses,
local same-row nets with equivalent pins (switchable segments), and one
clock-ish net touching every row — routes it, and prints a per-channel
track profile plus the intermediate routing artifacts.

Run:  python examples/custom_circuit.py
"""

from repro import GlobalRouter, RouterConfig
from repro.circuits import CircuitBuilder, save_circuit


def build():
    b = CircuitBuilder(rows=5, name="datapath", spacing=1)
    cells = {}
    for row in range(5):
        for col in range(8):
            cells[(row, col)] = b.cell(row=row, width=4)

    # vertical buses: bit slices through all rows at each column
    for col in range(0, 8, 2):
        b.net(
            f"bus{col}",
            [(cells[(row, col)], 1) for row in range(5)],
        )
    # local nets between row neighbours, dual-sided pins => switchable
    for row in range(5):
        for col in range(0, 7, 2):
            b.net(
                f"loc{row}_{col}",
                [(cells[(row, col)], 3), (cells[(row, col + 1)], 0)],
                equiv=[True, True],
            )
    # a control net fanning out to one cell per row
    b.net("ctl", [(cells[(row, 7)], 2) for row in range(5)])
    return b.build()


def main() -> None:
    circuit = build()
    print(f"circuit: {circuit}")

    router = GlobalRouter(RouterConfig(seed=3))
    result, art = router.route_with_artifacts(circuit)

    print(f"\ntotal tracks   : {result.total_tracks}")
    print(f"feedthroughs   : {result.num_feedthroughs}")
    print(f"wirelength     : {result.wirelength}")
    print(f"switch flips   : {result.flips}")

    print("\nper-channel track profile:")
    for ch, tracks in result.channel_tracks.items():
        where = (
            "below row 0" if ch == 0
            else "above row 4" if ch == circuit.num_rows
            else f"between rows {ch - 1} and {ch}"
        )
        print(f"  channel {ch} ({where:<22}): {'#' * tracks} {tracks}")

    print("\nrouting internals:")
    print(f"  Steiner trees        : {len(art.trees)}")
    print(f"  coarse pool segments : {art.pool_size}")
    print(f"  channel spans        : {len(art.spans)}")
    switchable = sum(1 for s in art.spans if s.switchable)
    print(f"  switchable spans     : {switchable}")

    save_circuit(circuit, "datapath.ckt")
    print("\ncircuit written to datapath.ckt (reload with load_circuit)")


if __name__ == "__main__":
    main()
