#!/usr/bin/env python
"""Quickstart: route a benchmark circuit serially and in parallel.

Generates a scaled MCNC-like benchmark, routes it with the serial
TimberWolfSC-style global router, then with the paper's hybrid parallel
algorithm on 8 simulated processors, and prints quality and modeled
runtime side by side.

Run:  python examples/quickstart.py
"""

from repro import GlobalRouter, RouterConfig, SPARCCENTER_1000, mcnc, route_parallel
from repro.parallel.driver import serial_baseline


def main() -> None:
    # A primary2-like circuit at 20% of its published size (fast to route).
    circuit = mcnc.generate("primary2", scale=0.2, seed=1)
    print(f"circuit: {circuit}")

    config = RouterConfig(seed=1)

    # --- serial TWGR ----------------------------------------------------
    serial = serial_baseline(circuit, config, machine=SPARCCENTER_1000)
    print("\nserial router:")
    print(f"  total tracks     : {serial.total_tracks}")
    print(f"  feedthroughs     : {serial.num_feedthroughs}")
    print(f"  wirelength       : {serial.wirelength}")
    print(f"  chip area        : {serial.area}")
    print(f"  modeled runtime  : {serial.model_time:.1f} s on {SPARCCENTER_1000.name}")

    # --- hybrid parallel algorithm, 8 processors ------------------------
    run = route_parallel(
        circuit, algorithm="hybrid", nprocs=8,
        machine=SPARCCENTER_1000, config=config, baseline=serial,
    )
    r = run.result
    print("\nhybrid parallel algorithm (8 processors):")
    print(f"  total tracks     : {r.total_tracks}  "
          f"(scaled {run.scaled_tracks:.3f} vs serial)")
    print(f"  chip area        : {r.area}  (scaled {run.scaled_area:.3f})")
    print(f"  modeled runtime  : {r.model_time:.1f} s")
    print(f"  speedup          : {run.speedup:.2f}x")
    print(f"  load imbalance   : {run.timing.load_imbalance:.2f}")

    print("\nper-rank modeled times (s):")
    for rank, t in enumerate(run.timing.rank_times):
        print(f"  rank {rank}: {t:6.2f}")


if __name__ == "__main__":
    main()
