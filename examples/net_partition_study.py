#!/usr/bin/env python
"""Study of the §5 net-partition heuristics and the pin-weight exponent.

Part 1 compares the four net-partition heuristics (center, locus,
density, pin-number-weight) on an avq.large-like circuit whose huge
clock nets dominate Steiner-tree construction time.

Part 2 sweeps the pin-number-weight exponent alpha: tree construction is
O(p^2) per net, so weighting nets by p^2 balances the modeled work best —
the paper tunes exactly this exponent for AVQ-LARGE.

Run:  python examples/net_partition_study.py
"""

from repro import RouterConfig, SPARCCENTER_1000, mcnc, route_parallel
from repro.analysis import Table
from repro.parallel import (
    ParallelConfig,
    RowPartition,
    partition_nets,
    partition_summary,
)
from repro.parallel.driver import serial_baseline

NPROCS = 8


def main() -> None:
    circuit = mcnc.generate("avq_large", scale=0.08, seed=1)
    config = RouterConfig(seed=1)
    print(f"circuit: {circuit}")
    big = sorted((n.degree for n in circuit.nets), reverse=True)[:4]
    print(f"largest net degrees: {big}\n")

    row_part = RowPartition.balanced(circuit, NPROCS)
    base = serial_baseline(circuit, config, machine=SPARCCENTER_1000)

    # --- part 1: the four heuristics -------------------------------------
    table = Table(
        title=f"Net partition heuristics on {circuit.name} (p={NPROCS})",
        columns=["scheme", "pin imb.", "steiner imb.", "scaled tracks", "speedup"],
    )
    for scheme in ("center", "locus", "density", "pin_weight"):
        owner = partition_nets(circuit, NPROCS, scheme=scheme, row_part=row_part)
        s = partition_summary(circuit, owner, NPROCS)
        run = route_parallel(
            circuit, "rowwise", nprocs=NPROCS, machine=SPARCCENTER_1000,
            config=config, pconfig=ParallelConfig(net_scheme=scheme),
            baseline=base,
        )
        table.add_row(
            scheme, s["pin_imbalance"], s["steiner_imbalance"],
            run.scaled_tracks, run.speedup,
        )
    print(table.render())

    # --- part 2: alpha sweep ----------------------------------------------
    sweep = Table(
        title="Pin-number-weight exponent sweep (rowwise, p=8)",
        columns=["alpha", "steiner imb.", "speedup"],
    )
    for alpha in (0.5, 1.0, 1.5, 2.0, 3.0):
        owner = partition_nets(
            circuit, NPROCS, scheme="pin_weight", row_part=row_part, alpha=alpha
        )
        s = partition_summary(circuit, owner, NPROCS)
        run = route_parallel(
            circuit, "rowwise", nprocs=NPROCS, machine=SPARCCENTER_1000,
            config=config,
            pconfig=ParallelConfig(net_scheme="pin_weight", alpha=alpha),
            baseline=base,
        )
        sweep.add_row(alpha, s["steiner_imbalance"], run.speedup)
    print()
    print(sweep.render())
    print(
        "\nNote: one >2000-pin clock net is indivisible, so its owner's"
        "\nSteiner work bounds the balance whatever alpha is — the lever"
        "\nis scheduling large nets first and spreading them (LPT), which"
        "\nall alpha >= 1 achieve; alpha ~ 2 matches the O(p^2) tree cost."
    )


if __name__ == "__main__":
    main()
