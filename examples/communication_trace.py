#!/usr/bin/env python
"""Inspect the communication structure of a parallel routing run.

Attaches a trace recorder to a hybrid routing run and prints the
per-rank message timeline plus the bytes-sent matrix — the hybrid
algorithm's two personalized all-to-alls (terminals out, spans back) and
the boundary-channel exchanges between row-adjacent ranks are clearly
visible.

Run:  python examples/communication_trace.py [algorithm] [nprocs]
"""

import sys

from repro import RouterConfig, SPARCCENTER_1000, mcnc, route_parallel
from repro.mpi import TraceRecorder


def main() -> None:
    algorithm = sys.argv[1] if len(sys.argv) > 1 else "hybrid"
    nprocs = int(sys.argv[2]) if len(sys.argv) > 2 else 4

    circuit = mcnc.generate("primary2", scale=0.1, seed=1)
    recorder = TraceRecorder()
    run = route_parallel(
        circuit, algorithm=algorithm, nprocs=nprocs,
        machine=SPARCCENTER_1000, config=RouterConfig(seed=1),
        compute_baseline=False, trace=recorder,
    )

    print(run.result.summary())
    print(
        f"\n{recorder.total_messages():,} messages, "
        f"{recorder.total_bytes():,} bytes total\n"
    )
    print(recorder.render_timeline(nprocs))
    print()
    print(recorder.render_matrix(nprocs))

    # heaviest communication pairs
    pairs = sorted(recorder.bytes_by_pair().items(), key=lambda kv: -kv[1])[:5]
    print("\nheaviest pairs:")
    for (src, dst), nbytes in pairs:
        print(f"  rank {src} -> rank {dst}: {nbytes:,} bytes")


if __name__ == "__main__":
    main()
