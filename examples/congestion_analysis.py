#!/usr/bin/env python
"""Congestion and scalability analysis of a routed benchmark.

Routes a biomed-like circuit, prints the circuit's statistical profile,
the channel congestion report (hotspot table + heat map), a concrete
left-edge track assignment of the busiest channel, and an Amdahl fit of
the hybrid algorithm's speedup curve.

Run:  python examples/congestion_analysis.py
"""

from repro import GlobalRouter, RouterConfig, SPARCCENTER_1000, mcnc, route_parallel
from repro.analysis import congestion_report, fit_amdahl, hotspots
from repro.circuits import degree_histogram_text, net_statistics, row_statistics
from repro.grid.leftedge import render_channel
from repro.parallel.driver import serial_baseline


def main() -> None:
    circuit = mcnc.generate("biomed", scale=0.1, seed=1)
    print(f"circuit: {circuit}")
    print(net_statistics(circuit).summary())
    print(row_statistics(circuit).summary())
    print()
    print(degree_histogram_text(circuit, max_degree=8))
    print()

    config = RouterConfig(seed=1)
    result, art = GlobalRouter(config).route_with_artifacts(circuit)
    print(congestion_report(art.spans, circuit.num_rows + 1, top=5))

    worst = hotspots(art.spans, circuit.num_rows + 1, top=1)[0]
    print(f"\nleft-edge track assignment of channel {worst.channel} "
          f"({worst.tracks} tracks):")
    print(render_channel(art.spans, channel=worst.channel))

    # scalability of the hybrid algorithm on this circuit
    base = serial_baseline(circuit, config, machine=SPARCCENTER_1000)
    speedups = {
        p: route_parallel(
            circuit, "hybrid", nprocs=p, machine=SPARCCENTER_1000,
            config=config, baseline=base,
        ).speedup
        for p in (2, 4, 8)
    }
    fit = fit_amdahl(speedups)
    print("\nhybrid speedups:", {p: round(s, 2) for p, s in speedups.items()})
    print(f"Amdahl fit: {fit.summary()}")
    print(f"predicted speedup at 32 processors: {fit.predict(32):.2f}x")


if __name__ == "__main__":
    main()
