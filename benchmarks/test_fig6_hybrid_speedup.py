"""Paper Figure 6 — speedups of the hybrid pin partition algorithm.

Expected shape (paper §7.3): "good speedups are obtained (average ~3 on
8 processors)" — slightly below the row-wise algorithm (the price of the
whole-net connection exchange) but clearly above the net-wise one.
"""

from repro.analysis.experiments import run_speedup_figure


def test_fig6_hybrid_speedup(benchmark, settings, emit):
    rendered, series = benchmark.pedantic(
        run_speedup_figure, args=("hybrid", settings), rounds=1, iterations=1
    )
    emit(rendered)

    for circuit, by_p in series.items():
        assert by_p[8] > by_p[2], circuit

    avg8 = sum(v[8] for v in series.values()) / len(series)
    assert avg8 > 2.5, f"hybrid average speedup @8 = {avg8:.2f}"

    _, rw = run_speedup_figure("rowwise", settings)
    rw8 = sum(v[8] for v in rw.values()) / len(rw)
    _, nw = run_speedup_figure("netwise", settings)
    nw8 = sum(v[8] for v in nw.values()) / len(nw)
    assert nw8 <= avg8 <= rw8 * 1.05
