"""Paper Figure 4 — speedups of the row-wise pin partition algorithm.

Expected shape (paper §7.1): "the speedups obtained are quite high"
— roughly 3-and-up on 8 processors, growing with processor count on
every circuit.
"""

from repro.analysis.experiments import run_speedup_figure


def test_fig4_rowwise_speedup(benchmark, settings, emit):
    rendered, series = benchmark.pedantic(
        run_speedup_figure, args=("rowwise", settings), rounds=1, iterations=1
    )
    emit(rendered)

    for circuit, by_p in series.items():
        assert by_p[2] > 1.2, circuit
        assert by_p[8] > by_p[4] > by_p[2], circuit
    avg8 = sum(v[8] for v in series.values()) / len(series)
    assert avg8 > 3.0, f"rowwise average speedup @8 = {avg8:.2f}"
