"""Ablation A2 — the pin-number-weight exponent on avq.large.

Paper §5 tunes the exponent of the pin-number-weight partition on
AVQ-LARGE, whose >2000-pin clock nets dominate Steiner-tree time.  Since
tree construction is O(p^2) per net, exponents near 2 should balance the
modeled Steiner work best and yield the best speedups.
"""

from repro.analysis.experiments import run_alpha_ablation

ALPHAS = (0.5, 1.0, 2.0, 3.0)


def test_ablation_pin_weight_alpha(benchmark, settings, emit):
    table, runs = benchmark.pedantic(
        run_alpha_ablation,
        args=(settings,),
        kwargs={"circuit_name": "avq_large", "nprocs": 8, "alphas": ALPHAS},
        rounds=1,
        iterations=1,
    )
    emit(table.render())

    imb = dict(zip(table.column("alpha"), table.column("steiner imbalance")))
    # alpha = 2 matches the O(p^2) cost model: best or tied-best balance
    assert imb[2.0] <= min(imb.values()) + 0.05
    # far-off exponents balance worse
    assert imb[0.5] >= imb[2.0]
    speedups = dict(zip(table.column("alpha"), table.column("speedup")))
    assert all(v is not None and v > 1.0 for v in speedups.values())
