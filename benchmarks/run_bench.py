#!/usr/bin/env python
"""Kernel and end-to-end benchmark harness — the repo's perf trajectory.

Runs the router's hot kernels (L-shape cost evaluation, congestion-map
add/remove, switchable flip gain, Prim MST) on realistic workloads plus a
full-scale end-to-end route of ``primary1`` and ``struct``, and writes the
timings to ``BENCH_kernels.json`` together with the commit hash and
circuit sizes.  Committing that file after a performance-relevant change
gives the repository a measured before/after record (see EXPERIMENTS.md).

It also times the sweep execution engine (``repro.exec``) on a
2-circuit × 3-algorithm × {1,2,4,8}-processor sweep — jobs=1 vs jobs=N
fan-out and cold vs warm run cache — and writes ``BENCH_sweep.json``
(skip with ``--no-sweep``).

``--transport-bench`` measures real wall-clock speedups on the
multiprocess SPMD transport (serial route vs ``--transport-nprocs``
rank processes, per algorithm) and appends a transport-stamped record
to the trajectory; the measured numbers are honest host numbers —
on a single-core runner they sit *below* 1x and are reported as such,
never gated (see EXPERIMENTS.md).

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py                 # full run
    PYTHONPATH=src python benchmarks/run_bench.py --scale 0.3     # quicker
    PYTHONPATH=src python benchmarks/run_bench.py --out /tmp/b.json

The kernel workloads are derived from an actual routed circuit (not
synthetic uniform data), so sharing structure and congestion profiles are
representative of what the router sees mid-run.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import shutil
import statistics
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Callable, Dict, List

import numpy as np

from repro.analysis.records import load_trajectory, validate_trajectory_record
from repro.circuits import mcnc
from repro.grid.backends import BACKEND_NAMES, resolve_backend_name
from repro.grid.channels import build_state
from repro.grid.coarse import CoarseGrid, Orientation
from repro.steiner import prim_mst
from repro.steiner.tree import build_net_tree
from repro.twgr import GlobalRouter, RouterConfig
from repro.twgr.coarse_step import coarse_route, collect_segments

#: circuits routed end-to-end (full scale by default)
BENCH_CIRCUITS = ("primary1", "struct")


def _time(fn: Callable[[], object], rounds: int, inner: int = 1) -> Dict[str, float]:
    """Best-practice micro timing: per-round wall time over ``rounds``."""
    fn()  # warm-up (imports, caches, JIT-free but allocator-warm)
    samples: List[float] = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        for _ in range(inner):
            fn()
        samples.append((time.perf_counter() - t0) / inner)
    return {
        "mean_s": statistics.fmean(samples),
        "stddev_s": statistics.stdev(samples) if len(samples) > 1 else 0.0,
        "min_s": min(samples),
        "rounds": rounds,
        "inner_iterations": inner,
    }


def bench_kernels(
    scale: float, seed: int, rounds: int, backend: str = "auto"
) -> Dict[str, Dict[str, float]]:
    """Micro-benchmarks of the three congestion kernels plus Prim MST."""
    cfg = RouterConfig(seed=seed, backend=backend)
    circuit = mcnc.generate("primary1", scale=scale, seed=seed)
    router = GlobalRouter(cfg)
    _result, art = router.route_with_artifacts(circuit)
    grid: CoarseGrid = art.grid
    # Recommit the pool on a fresh grid so the benchmark owns a consistent
    # (grid, committed routes) pair — route_with_artifacts keeps the grid
    # but not the per-segment pool.
    grid = CoarseGrid(
        ncols=grid.ncols, nrows=grid.nrows, col_width=grid.col_width,
        weights=cfg.weights, backend=backend,
    )
    committed_pool = coarse_route(
        collect_segments(art.trees), grid, cfg.rng(2, 0), passes=cfg.coarse_passes
    )
    out: Dict[str, Dict[str, float]] = {}

    # -- eval_cost: both orientations of every diagonal segment against the
    # fully loaded grid (exactly the improvement-pass access pattern).
    diagonals = [ps for ps in committed_pool if not ps.seg.is_flat]
    routes = []
    for ps in diagonals:
        routes.append(grid.route_for(ps.net, ps.seg, Orientation.VERT_AT_LOW))
        routes.append(grid.route_for(ps.net, ps.seg, Orientation.VERT_AT_HIGH))

    def run_eval() -> float:
        acc = 0.0
        for r in routes:
            acc += grid.eval_cost(r)
        return acc

    out["eval_cost"] = _time(run_eval, rounds)
    out["eval_cost"]["calls_per_round"] = len(routes)

    # -- batched_eval: the wave-level entry point — the same candidates as
    # ``eval_cost``, but every (low, high) pair scored in ONE backend call
    # (fused gathers on numpy; the sequential loop on python), near-ties
    # deferred to the strict oracle either way.
    pairs = [(ps.route_low, ps.route_high) for ps in diagonals]

    out["batched_eval"] = _time(lambda: grid.eval_both_batch(pairs), rounds)
    out["batched_eval"]["calls_per_round"] = len(pairs)

    # -- add/remove: rip-up + recommit of every committed route.
    committed = [ps.route for ps in committed_pool]

    def run_add_remove() -> None:
        for r in committed:
            grid.remove_route(r)
            grid.add_route(r)

    out["add_remove_route"] = _time(run_add_remove, rounds)
    out["add_remove_route"]["calls_per_round"] = 2 * len(committed)

    # -- flip_gain: every switchable span against the final channel state.
    spans = art.spans
    state = build_state(spans, 0, circuit.num_rows)
    switchable = [s for s in spans if s.switchable]

    def run_flip_gain() -> int:
        acc = 0
        for s in switchable:
            acc += state.flip_gain(s)
        return acc

    out["flip_gain"] = _time(run_flip_gain, rounds)
    out["flip_gain"]["calls_per_round"] = len(switchable)

    # -- prim_mst: the step-1 bottleneck at two characteristic sizes.
    rng = np.random.default_rng(seed)
    big = rng.integers(0, 2000, size=(200, 2))
    out["prim_mst"] = _time(lambda: prim_mst(big), rounds)
    out["prim_mst"]["terminals"] = 200
    small_sets = [rng.integers(0, 500, size=(int(n), 2)) for n in rng.integers(2, 9, size=200)]

    def run_small() -> None:
        for c in small_sets:
            prim_mst(c)

    out["prim_mst_small_nets"] = _time(run_small, rounds)
    out["prim_mst_small_nets"]["calls_per_round"] = len(small_sets)

    # -- steiner tree build (MST + refinement) over the same small nets.
    def run_trees() -> None:
        for i, c in enumerate(small_sets):
            build_net_tree(i, [(int(x), int(y)) for x, y in c])

    out["build_net_tree_small_nets"] = _time(run_trees, rounds)
    out["build_net_tree_small_nets"]["calls_per_round"] = len(small_sets)
    return out


def bench_end_to_end(
    scale: float, seed: int, rounds: int, backend: str = "auto"
) -> Dict[str, Dict]:
    """Full serial routes of the benchmark circuits at ``scale``."""
    out: Dict[str, Dict] = {}
    for name in BENCH_CIRCUITS:
        circuit = mcnc.generate(name, scale=scale, seed=seed)
        router = GlobalRouter(RouterConfig(seed=seed, backend=backend))
        result, art = router.route_with_artifacts(circuit)
        timing = _time(lambda: router.route(circuit), rounds)
        # Incremental-engine observability: clean/dirty candidate counts
        # per coarse improvement pass and per step-5 gain sweep, plus the
        # headline dirty fraction (dirty / total over all coarse passes).
        coarse_stats = art.grid.flip_pass_stats() if art.grid is not None else []
        c_clean = sum(p["clean"] for p in coarse_stats)
        c_dirty = sum(p["dirty"] for p in coarse_stats)
        out[name] = {
            "scale": scale,
            "rows": circuit.num_rows,
            "cells": len(circuit.cells),
            "nets": len(circuit.nets),
            "pins": len(circuit.pins),
            "total_tracks": result.total_tracks,
            "area": result.area,
            "num_feedthroughs": result.num_feedthroughs,
            "route": timing,
            "coarse_pass_stats": coarse_stats,
            "switch_pass_stats": art.switch_stats,
            "dirty_frac": (
                round(c_dirty / (c_clean + c_dirty), 4)
                if (c_clean + c_dirty) else 1.0
            ),
        }
    return out


#: the engine sweep: both bench circuits, all three algorithms, the
#: paper's SparcCenter processor counts
SWEEP_ALGORITHMS = ("rowwise", "netwise", "hybrid")
SWEEP_PROCS = (1, 2, 4, 8)


def bench_sweep(
    scale: float, seed: int, jobs: int | None, backend: str = "auto"
) -> Dict:
    """Time the execution engine on a full sweep, three ways.

    1. cold, ``jobs=1`` — the in-process reference execution;
    2. cold, ``jobs=N`` — process-pool fan-out into an empty cache;
    3. warm — the same sweep replayed entirely from the cache.

    All three must produce bit-identical quality metrics and modeled
    times; the report records the wall-time ratios.
    """
    from repro.exec import SweepPoint, RunCache, resolve_jobs, run_sweep

    cfg = RouterConfig(seed=seed, backend=backend)
    points = [
        SweepPoint(
            circuit=name, algorithm=algo, nprocs=p, scale=scale,
            circuit_seed=seed, config=cfg,
        )
        for name in BENCH_CIRCUITS
        for algo in SWEEP_ALGORITHMS
        for p in SWEEP_PROCS
    ]
    njobs = resolve_jobs(jobs)

    tmp = tempfile.mkdtemp(prefix="repro-bench-cache-")
    try:
        t0 = time.perf_counter()
        serial_recs = run_sweep(points, jobs=1)
        cold_jobs1_s = time.perf_counter() - t0

        cache = RunCache(tmp)
        t0 = time.perf_counter()
        pooled_recs = run_sweep(points, jobs=njobs, cache=cache)
        cold_jobsn_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        warm_recs = run_sweep(points, jobs=njobs, cache=cache)
        warm_cache_s = time.perf_counter() - t0

        qualities = [list(r.quality) for r in serial_recs]
        identical = (
            qualities == [list(r.quality) for r in pooled_recs]
            and qualities == [list(r.quality) for r in warm_recs]
            and all(r.cached for r in warm_recs)
        )
    finally:
        shutil.rmtree(tmp, ignore_errors=True)

    return {
        "scale": scale,
        "seed": seed,
        "circuits": list(BENCH_CIRCUITS),
        "algorithms": list(SWEEP_ALGORITHMS),
        "procs": list(SWEEP_PROCS),
        "points": len(points),
        "host_cpus": os.cpu_count(),
        "jobs": njobs,
        "cold_jobs1_s": round(cold_jobs1_s, 4),
        "cold_jobsN_s": round(cold_jobsn_s, 4),
        "warm_cache_s": round(warm_cache_s, 4),
        "jobs_speedup": round(cold_jobs1_s / cold_jobsn_s, 3),
        "warm_cache_speedup": round(cold_jobsn_s / warm_cache_s, 1),
        "bit_identical": identical,
        "quality": {
            p.describe(): q for p, q in zip(points, qualities)
        },
    }


def bench_transport(
    scale: float, seed: int, nprocs: int, backend: str = "auto"
) -> Dict:
    """Measured wall-clock speedups on the multiprocess SPMD transport.

    Routes ``primary1`` once per parallel algorithm with ``nprocs`` real
    rank processes (``transport="multiprocess"``) plus the serial
    baseline in-process, and reports
    ``measured = serial_wall / parallel_wall`` next to the modeled
    logical-clock speedup.  The measured number includes process
    startup and message pickling and cannot exceed the host's core
    count — ``host_cpus`` is recorded so a sub-1x result on a one-core
    runner reads as the platform fact it is, not a regression.
    """
    from repro.parallel.driver import route_parallel

    circuit_name = "primary1"
    circuit = mcnc.generate(circuit_name, scale=scale, seed=seed)
    cfg = RouterConfig(seed=seed, backend=backend)
    by_algo: Dict[str, Dict] = {}
    walls: List[float] = []
    for algo in SWEEP_ALGORITHMS:
        run = route_parallel(
            circuit, algorithm=algo, nprocs=nprocs, config=cfg,
            transport="multiprocess",
        )
        t = run.timing
        walls.append(t.measured_wall_s or 0.0)
        by_algo[algo] = {
            "measured": (
                round(t.measured_speedup, 4)
                if t.measured_speedup is not None else None
            ),
            "modeled": round(t.speedup, 4) if t.speedup is not None else None,
            "serial_wall_s": round(t.measured_serial_s or 0.0, 4),
            "parallel_wall_s": round(t.measured_wall_s or 0.0, 4),
            "total_tracks": run.result.total_tracks,
        }
    return {
        "circuit": circuit_name,
        "scale": scale,
        "seed": seed,
        "nprocs": nprocs,
        "host_cpus": os.cpu_count(),
        "by_algorithm": by_algo,
        "mean_parallel_wall_s": round(sum(walls) / len(walls), 4),
    }


#: version of the per-commit trajectory record layout
TRAJECTORY_SCHEMA = 1


def merge_trajectory_record(record: Dict, path: Path) -> Dict:
    """Validate ``record`` and fold it into the trajectory file.

    Dedupe key is ``(commit, backend, transport, scale, seed, rounds)``:
    re-running the same measurement replaces its record, but a record on
    another backend, transport, or operating point never clobbers an
    existing one.
    """
    def _key(r):
        return (
            r.get("commit"), r.get("backend", ""), r.get("transport", ""),
            r.get("scale"), r.get("seed"), r.get("rounds"),
        )

    validate_trajectory_record(record, f"{path}: new record")
    if path.exists():
        records = [r for r in load_trajectory(path) if _key(r) != _key(record)]
    else:
        records = []
    records.append(record)
    trajectory = {"schema": TRAJECTORY_SCHEMA, "records": records}
    path.write_text(json.dumps(trajectory, indent=2) + "\n")
    return record


def append_trajectory(report: Dict, path: Path) -> Dict:
    """Fold one bench report into the cumulative ``BENCH_trajectory.json``.

    The trajectory file is the repo's long-term perf memory: one compact
    record per commit (re-running on the same commit replaces its record
    rather than appending a duplicate), ordered oldest-first, so plotting
    mean route time against commit history is a single ``json.load``.
    Records carry only headline numbers — kernel means and end-to-end
    route stats — not the full sample distributions of the main report.
    Both the existing file and the freshly built record pass through the
    versioned fail-fast validator (:mod:`repro.analysis.records`), so a
    hand-edited or corrupted trajectory is rejected before it is
    silently rewritten.
    """
    record = {
        "schema": TRAJECTORY_SCHEMA,
        "commit": report["commit"],
        "unix_time": report["unix_time"],
        "python": report["python"],
        "backend": report.get("backend", ""),
        "seed": report["seed"],
        "scale": report["scale"],
        "rounds": report["rounds"],
        "kernels_mean_s": {
            name: k["mean_s"] for name, k in report["kernels"].items()
        },
        "circuits": {
            name: {
                "route_mean_s": c["route"]["mean_s"],
                "route_min_s": c["route"]["min_s"],
                "total_tracks": c["total_tracks"],
                "area": c["area"],
                "num_feedthroughs": c["num_feedthroughs"],
                "dirty_frac": c.get("dirty_frac"),
            }
            for name, c in report["circuits"].items()
        },
    }
    return merge_trajectory_record(record, path)


def transport_trajectory_record(transport_report: Dict, backend: str) -> Dict:
    """A slim transport-stamped trajectory record from a transport bench.

    Carries the measured parallel route wall as ``route_mean_s`` (so the
    ``backend@multiprocess`` chain trends it across commits) and the full
    per-algorithm speedup block under ``speedups``.  No kernel stats:
    kernels are transport-independent and already trended by the main
    record.
    """
    sp = transport_report
    return {
        "schema": TRAJECTORY_SCHEMA,
        "commit": git_commit(),
        "unix_time": int(time.time()),
        "python": sys.version.split()[0],
        "backend": backend,
        "transport": "multiprocess",
        "seed": sp["seed"],
        "scale": sp["scale"],
        "rounds": 1,
        "kernels_mean_s": {},
        "circuits": {
            sp["circuit"]: {
                "route_mean_s": sp["mean_parallel_wall_s"],
            },
        },
        "speedups": {
            "nprocs": sp["nprocs"],
            "host_cpus": sp["host_cpus"],
            "by_algorithm": sp["by_algorithm"],
        },
    }


def git_commit() -> str:
    """``HEAD`` hash, stamped ``+dirty`` when the worktree has changes.

    The stamp keeps trajectory records honest: re-running on an
    uncommitted state dedupes against the *dirty* record of that commit,
    never silently replacing the clean post-commit measurement (the
    trajectory dedupe key is ``(commit, backend, scale, seed, rounds)``).
    """
    repo = Path(__file__).resolve().parent.parent
    try:
        head = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=repo, capture_output=True, text=True, check=True,
        ).stdout.strip()
    except Exception:
        return "unknown"
    try:
        dirty = bool(subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=repo, capture_output=True, text=True, check=True,
        ).stdout.strip())
    except Exception:
        dirty = False
    return head + "+dirty" if dirty else head


def main(argv: List[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--out", default=str(Path(__file__).resolve().parent.parent / "BENCH_kernels.json"))
    ap.add_argument("--scale", type=float, default=1.0, help="circuit scale (default: full size)")
    ap.add_argument("--kernel-scale", type=float, default=1.0, help="scale of the kernel-workload circuit")
    ap.add_argument("--seed", type=int, default=1)
    ap.add_argument("--rounds", type=int, default=5)
    ap.add_argument(
        "--backend", default="auto", choices=("auto",) + BACKEND_NAMES,
        help="congestion-core backend (auto = REPRO_BACKEND env, else numpy)",
    )
    ap.add_argument(
        "--sweep-out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_sweep.json"),
    )
    ap.add_argument(
        "--sweep-scale", type=float, default=0.1,
        help="circuit scale for the engine sweep benchmark",
    )
    ap.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for the engine sweep (default: host cores)",
    )
    ap.add_argument(
        "--no-sweep", action="store_true",
        help="skip the execution-engine sweep benchmark",
    )
    ap.add_argument(
        "--trajectory",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_trajectory.json"),
        help="cumulative per-commit trajectory file (empty string to skip)",
    )
    ap.add_argument(
        "--transport-bench", action="store_true",
        help="measure wall-clock speedups on the multiprocess transport "
        "and append a transport-stamped trajectory record",
    )
    ap.add_argument(
        "--transport-nprocs", type=int, default=4,
        help="rank processes for the transport bench (default 4)",
    )
    ap.add_argument(
        "--transport-scale", type=float, default=0.15,
        help="circuit scale for the transport bench (default 0.15)",
    )
    ap.add_argument(
        "--transport-only", action="store_true",
        help="run only the transport bench (implies --transport-bench, "
        "skips kernels/end-to-end/sweep)",
    )
    args = ap.parse_args(argv)
    if args.rounds < 1:
        ap.error("--rounds must be >= 1")

    backend = resolve_backend_name(args.backend)

    def run_transport_bench() -> None:
        sp = bench_transport(
            args.transport_scale, args.seed, args.transport_nprocs, backend
        )
        print(
            f"transport bench (multiprocess, p={sp['nprocs']}, "
            f"{sp['host_cpus']} cpu(s), {sp['circuit']}@{sp['scale']:g}):"
        )
        for algo, entry in sp["by_algorithm"].items():
            measured = entry["measured"]
            modeled = entry["modeled"]
            print(
                f"  {algo:<8} serial {entry['serial_wall_s']:.3f}s, "
                f"parallel {entry['parallel_wall_s']:.3f}s, measured "
                f"{f'{measured:.2f}x' if measured is not None else 'n/a'} "
                f"(modeled {f'{modeled:.2f}x' if modeled is not None else 'n/a'})"
            )
        if args.trajectory:
            record = transport_trajectory_record(sp, backend)
            merge_trajectory_record(record, Path(args.trajectory))
            print(f"appended transport record to {args.trajectory}")

    if args.transport_only:
        run_transport_bench()
        return 0

    t0 = time.perf_counter()
    kernels = bench_kernels(args.kernel_scale, args.seed, args.rounds, backend)
    circuits = bench_end_to_end(args.scale, args.seed, args.rounds, backend)

    report = {
        "schema": 1,
        "commit": git_commit(),
        "unix_time": int(time.time()),
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "backend": backend,
        "seed": args.seed,
        "scale": args.scale,
        "rounds": args.rounds,
        "kernels": kernels,
        "circuits": circuits,
        "harness_wall_s": round(time.perf_counter() - t0, 3),
    }
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    if args.trajectory:
        append_trajectory(report, Path(args.trajectory))

    width = max(len(k) for k in list(kernels) + list(circuits))
    print(
        f"commit {report['commit'][:12]}  (rounds={args.rounds}, "
        f"scale={args.scale}, backend={backend})"
    )
    for name, k in kernels.items():
        per = ""
        calls = k.get("calls_per_round")
        if calls:
            per = f"  ({1e6 * k['mean_s'] / calls:8.2f} us/call)"
        print(f"  {name:<{width}}  {1e3 * k['mean_s']:9.3f} ms +/- {1e3 * k['stddev_s']:.3f}{per}")
    for name, c in circuits.items():
        r = c["route"]
        print(
            f"  {name:<{width}}  {1e3 * r['mean_s']:9.3f} ms +/- {1e3 * r['stddev_s']:.3f}"
            f"  (route: {c['nets']} nets, {c['total_tracks']} tracks, "
            f"dirty {c['dirty_frac']:.0%})"
        )
    print(f"wrote {args.out}")
    if args.trajectory:
        print(f"appended commit record to {args.trajectory}")

    if not args.no_sweep:
        sweep = bench_sweep(args.sweep_scale, args.seed, args.jobs, backend)
        sweep_report = {
            "schema": 1,
            "commit": report["commit"],
            "unix_time": report["unix_time"],
            "python": report["python"],
            "backend": backend,
            "sweep": sweep,
        }
        Path(args.sweep_out).write_text(json.dumps(sweep_report, indent=2) + "\n")
        print(
            f"engine sweep ({sweep['points']} points @ scale {sweep['scale']:g}, "
            f"{sweep['host_cpus']} cpu(s)):"
        )
        print(
            f"  cold jobs=1 {sweep['cold_jobs1_s']:.2f}s, "
            f"cold jobs={sweep['jobs']} {sweep['cold_jobsN_s']:.2f}s "
            f"({sweep['jobs_speedup']:.2f}x), "
            f"warm cache {sweep['warm_cache_s']:.3f}s "
            f"({sweep['warm_cache_speedup']:.0f}x)"
        )
        print(f"  bit-identical across all three: {sweep['bit_identical']}")
        print(f"wrote {args.sweep_out}")

    if args.transport_bench:
        run_transport_bench()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
