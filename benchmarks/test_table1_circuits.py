"""Paper Table 1 — characteristics of the test circuits."""

from repro.analysis.experiments import run_circuit_characteristics
from repro.circuits import mcnc


def test_table1_circuit_characteristics(benchmark, settings, emit):
    table = benchmark.pedantic(
        run_circuit_characteristics, args=(settings,), rounds=1, iterations=1
    )
    emit(table.render())
    assert [row[0] for row in table.rows] == list(mcnc.PAPER_SUITE)
    cells = table.column("cells")
    # suite ordering by size as in the paper's Table 1
    assert cells[0] == min(cells)
    assert cells[-1] == max(cells)
    pins = table.column("pins")
    assert all(p > c for p, c in zip(pins, cells))  # more pins than cells
