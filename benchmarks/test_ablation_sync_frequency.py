"""Ablation A3 — net-wise synchronization frequency.

Paper §5/§7.2: "The routing quality is controlled by frequent
synchronization but this reduces the runtime performance and is very
costly."  Sweeping the per-pass synchronization count (in the costly
*profile* mode, the one that actually controls quality) must show the
runtime falling monotonically-ish with frequency while quality holds or
improves.
"""

from dataclasses import replace

from repro.analysis.experiments import run_sync_frequency_ablation

FREQS = (1, 4, 8)


def test_ablation_netwise_sync_frequency(benchmark, settings, emit):
    profile_settings = replace(
        settings, pconfig=replace(settings.pconfig, switch_sync_mode="profile")
    )
    table, runs = benchmark.pedantic(
        run_sync_frequency_ablation,
        args=(profile_settings,),
        kwargs={"circuit_name": "biomed", "nprocs": 8, "frequencies": FREQS},
        rounds=1,
        iterations=1,
    )
    emit(table.render())

    speedups = dict(zip(table.column("syncs/pass"), table.column("speedup")))
    # more syncing = slower (the paper's runtime cost of quality control)
    assert speedups[8] < speedups[1]

    comm = dict(zip(table.column("syncs/pass"), table.column("comm share")))
    assert comm[8] > comm[1]

    quality = dict(zip(table.column("syncs/pass"), table.column("scaled tracks")))
    # frequent profile sync keeps quality near serial
    assert quality[8] < 1.10
