"""Extension experiment — scaling beyond the paper's processor counts.

The paper evaluates up to 8 (SMP) / 20 (Paragon) processors.  This
extension runs the row-wise and hybrid algorithms on a modern-cluster
machine model at up to 32 ranks on an avq.large-like circuit (86 rows),
probing where the algorithms' Amdahl terms — the replicated circuit
scans and the boundary-channel coupling — flatten the speedup curve.

Expected shape: speedup grows through 16 ranks and clearly sub-linear at
32 (3-row blocks make nearly every net a boundary net); quality keeps
degrading gently with rank count for row-wise while hybrid stays flat.
"""

import pytest

from repro.circuits import mcnc
from repro.parallel import route_parallel
from repro.parallel.driver import serial_baseline
from repro.perfmodel import GENERIC_CLUSTER
from repro.twgr import RouterConfig

PROCS = (4, 16, 32)


@pytest.fixture(scope="module")
def setup():
    circuit = mcnc.generate("avq_large", scale=0.06, seed=1)
    config = RouterConfig(seed=1)
    base = serial_baseline(circuit, config, machine=GENERIC_CLUSTER)
    return circuit, config, base


def run_sweep(setup, algorithm):
    circuit, config, base = setup
    return {
        p: route_parallel(
            circuit, algorithm, nprocs=p, machine=GENERIC_CLUSTER,
            config=config, baseline=base,
        )
        for p in PROCS
    }


def test_extension_scalability(benchmark, setup, emit):
    runs = {}

    def sweep():
        runs["rowwise"] = run_sweep(setup, "rowwise")
        runs["hybrid"] = run_sweep(setup, "hybrid")
        return runs

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    from repro.analysis import Table

    table = Table(
        title="Extension: scaling to 32 ranks on a modern cluster (avq_large-like)",
        columns=["algorithm"]
        + [f"speedup@{p}" for p in PROCS]
        + [f"scaled tracks@{p}" for p in PROCS],
    )
    for algo, sweep_runs in runs.items():
        table.add_row(
            algo,
            *[sweep_runs[p].speedup for p in PROCS],
            *[sweep_runs[p].scaled_tracks for p in PROCS],
        )
    emit(table.render())

    for algo, sweep_runs in runs.items():
        sp = {p: sweep_runs[p].speedup for p in PROCS}
        # more ranks keep helping through 16...
        assert sp[16] > sp[4], algo
        # ...but efficiency collapses well below linear by 32
        assert sp[32] < 32 * 0.6, algo
        # and quality stays bounded even at 3-row blocks
        assert sweep_runs[32].scaled_tracks < 1.3, algo

    # hybrid keeps its quality advantage at extreme partitioning
    assert (
        runs["hybrid"][32].scaled_tracks <= runs["rowwise"][32].scaled_tracks + 0.02
    )
