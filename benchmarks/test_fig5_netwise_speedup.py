"""Paper Figure 5 — speedups of the net-wise pin partition algorithm.

Expected shape (paper §7.2): "poor speedups" — clearly below both the
row-wise and hybrid algorithms at every processor count, because of the
costly synchronization across all the channels.
"""

from repro.analysis.experiments import run_speedup_figure


def test_fig5_netwise_speedup(benchmark, settings, emit):
    rendered, series = benchmark.pedantic(
        run_speedup_figure, args=("netwise", settings), rounds=1, iterations=1
    )
    emit(rendered)

    avg = {
        p: sum(v[p] for v in series.values()) / len(series) for p in (2, 4, 8)
    }
    _, rw = run_speedup_figure("rowwise", settings)
    _, hy = run_speedup_figure("hybrid", settings)
    for p in (2, 4, 8):
        rw_avg = sum(v[p] for v in rw.values()) / len(rw)
        hy_avg = sum(v[p] for v in hy.values()) / len(hy)
        assert avg[p] <= rw_avg, f"netwise not slowest at p={p}"
        assert avg[p] <= hy_avg * 1.02, f"netwise not slowest at p={p}"
    # still some speedup at 8 processors (paper: ~2.x)
    assert 1.5 < avg[8] < 5.0
