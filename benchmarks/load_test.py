#!/usr/bin/env python
"""Seeded load generator for the routing service.

Drives a :class:`~repro.service.httpd.ServiceHost` (``--inprocess``) or
an already-running ``repro serve`` instance (``--host/--port``) with a
reproducible request stream and reports latency percentiles, throughput,
and coalescing/cache effectiveness.  Everything is derived from
``--seed``, so two runs against the same service state produce the same
request sequence — the load test is an experiment, not a fuzzer.

Workload model
--------------
* **Key population** — requests are drawn from ``--keys`` distinct
  points (circuit fixed, seeds 1..K) with a Zipf-like hot-key skew
  (``--skew``; 0 = uniform, larger = hotter head).  Skewed duplicates
  are exactly what the service's in-flight coalescing and the run cache
  exist to absorb, so the hit/coalesce counters are the interesting
  output, not a nuisance.
* **Closed loop** (default) — ``--clients`` concurrent clients, each
  issuing its next request after a think time drawn from a seeded
  exponential distribution (``--think-ms`` mean; 0 = back-to-back).
  Offered load adapts to service speed, like interactive users.
* **Open loop** (``--open``) — arrivals at a fixed ``--rps`` rate on a
  seeded Poisson process, regardless of completions; a queueing-delay
  probe.  With a single-core host the service saturates quickly: p99
  then measures queue depth, not route time, which is the point.
* **Ramp** (``--ramp``) — open-loop rate climbs linearly from 0 to
  ``--rps`` over the run, exposing the knee.
* **Burst** (``--burst K``) — before the main phases, K *identical*
  requests are fired concurrently at an empty cache; the response
  ``coalesced`` flags must show K-1 shares.  This is the CI evidence
  that request coalescing works end-to-end over real sockets.

Phases: the same stream runs twice — ``cold`` (empty cache) and
``warm`` (every key cached) — so the report separates route cost from
service overhead.

Latencies land in the process-local
:data:`~repro.obs.metrics.REGISTRY` under ``loadtest.request_ms`` (the
service side observes ``service.request_ms``); ``--snapshot-out`` saves
the merged snapshot for ``repro metrics export --snapshot`` and
``--json-out`` saves the summary table.

Usage::

    PYTHONPATH=src python benchmarks/load_test.py --inprocess \\
        --clients 4 --requests 40 --burst 6 --snapshot-out snap.json
"""

from __future__ import annotations

import argparse
import asyncio
import json
import math
import random
import sys
import time
from typing import Any, Dict, List, Optional

from repro.obs.metrics import REGISTRY
from repro.service import RoutingService, ServiceConfig, ServiceHost
from repro.service.client import AsyncServiceClient
from repro.service.schema import request_from_point
from repro.exec.engine import SweepPoint
from repro.twgr.config import RouterConfig


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    target = p.add_argument_group("target")
    target.add_argument("--host", default="127.0.0.1")
    target.add_argument("--port", type=int, default=0)
    target.add_argument(
        "--inprocess", action="store_true",
        help="boot a ServiceHost in this process (ephemeral port, tmp cache)",
    )
    target.add_argument(
        "--cache-dir", default=None,
        help="run cache for --inprocess (default: a temporary directory)",
    )
    target.add_argument(
        "--workers", type=int, default=2, help="service workers for --inprocess"
    )
    target.add_argument(
        "--fault-plan", default="",
        help="named fault plan for --inprocess (chaos mode)",
    )

    load = p.add_argument_group("workload")
    load.add_argument("--seed", type=int, default=1)
    load.add_argument("--circuit", default="primary1")
    load.add_argument("--scale", type=float, default=0.05)
    load.add_argument(
        "--keys", type=int, default=8,
        help="distinct request keys (circuit seeds 1..K)",
    )
    load.add_argument(
        "--skew", type=float, default=1.0,
        help="Zipf exponent for key popularity (0 = uniform)",
    )
    load.add_argument(
        "--clients", type=int, default=4, help="closed-loop concurrent clients"
    )
    load.add_argument(
        "--requests", type=int, default=40, help="total requests per phase"
    )
    load.add_argument(
        "--think-ms", type=float, default=10.0,
        help="mean exponential think time between a client's requests",
    )
    load.add_argument(
        "--open", action="store_true",
        help="open-loop arrivals at --rps instead of closed-loop clients",
    )
    load.add_argument(
        "--rps", type=float, default=20.0, help="open-loop arrival rate"
    )
    load.add_argument(
        "--ramp", action="store_true",
        help="ramp the open-loop rate linearly from 0 to --rps",
    )
    load.add_argument(
        "--burst", type=int, default=0,
        help="fire N identical concurrent requests first (coalescing probe)",
    )
    load.add_argument(
        "--skip-warm", action="store_true", help="run only the cold phase"
    )

    out = p.add_argument_group("output")
    out.add_argument("--json-out", metavar="PATH", help="write the summary JSON")
    out.add_argument(
        "--snapshot-out", metavar="PATH",
        help="write the metrics snapshot (for `repro metrics export --snapshot`)",
    )
    return p


def make_points(args: argparse.Namespace) -> List[SweepPoint]:
    """The K distinct request targets, fixed given the CLI knobs."""
    return [
        SweepPoint(
            circuit=args.circuit, algorithm="serial", nprocs=1,
            scale=args.scale, circuit_seed=seed,
            config=RouterConfig(seed=seed),
        )
        for seed in range(1, args.keys + 1)
    ]


def zipf_weights(n: int, skew: float) -> List[float]:
    weights = [1.0 / (rank ** skew) for rank in range(1, n + 1)]
    total = sum(weights)
    return [w / total for w in weights]


def plan_requests(args: argparse.Namespace, phase_seed: int) -> List[int]:
    """The seeded key index of every request in one phase."""
    rng = random.Random(phase_seed)
    weights = zipf_weights(args.keys, args.skew)
    return rng.choices(range(args.keys), weights=weights, k=args.requests)


class PhaseStats:
    """Latency/outcome accounting for one phase."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.latencies_ms: List[float] = []
        self.statuses: Dict[int, int] = {}
        self.coalesced = 0
        self.cached = 0
        self.wall_s = 0.0

    def observe(self, status: int, payload: Any, elapsed_ms: float) -> None:
        self.latencies_ms.append(elapsed_ms)
        self.statuses[status] = self.statuses.get(status, 0) + 1
        if isinstance(payload, dict):
            if payload.get("coalesced"):
                self.coalesced += 1
            if payload.get("cached"):
                self.cached += 1
        REGISTRY.histogram("loadtest.request_ms").observe(elapsed_ms)
        REGISTRY.counter("loadtest.requests").inc()

    def percentile(self, q: float) -> float:
        if not self.latencies_ms:
            return 0.0
        ordered = sorted(self.latencies_ms)
        idx = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
        return ordered[idx]

    def summary(self) -> Dict[str, Any]:
        n = len(self.latencies_ms)
        return {
            "phase": self.name,
            "requests": n,
            "wall_s": round(self.wall_s, 4),
            "throughput_rps": round(n / self.wall_s, 2) if self.wall_s else 0.0,
            "p50_ms": round(self.percentile(0.50), 2),
            "p95_ms": round(self.percentile(0.95), 2),
            "p99_ms": round(self.percentile(0.99), 2),
            "statuses": dict(sorted(self.statuses.items())),
            "coalesced": self.coalesced,
            "cached": self.cached,
        }


async def _timed_route(
    client: AsyncServiceClient, body: Dict[str, Any], stats: PhaseStats
) -> None:
    t0 = time.perf_counter()
    status, payload = await client.route(body)
    stats.observe(status, payload, (time.perf_counter() - t0) * 1e3)


async def run_burst(args: argparse.Namespace, host: str, port: int) -> Dict[str, Any]:
    """K identical concurrent requests — the coalescing probe."""
    stats = PhaseStats("burst")
    body = request_from_point(make_points(args)[0])
    clients = [AsyncServiceClient(host, port) for _ in range(args.burst)]
    t0 = time.perf_counter()
    try:
        await asyncio.gather(
            *(_timed_route(c, dict(body), stats) for c in clients)
        )
    finally:
        for c in clients:
            await c.close()
    stats.wall_s = time.perf_counter() - t0
    return stats.summary()


async def run_closed_loop(
    args: argparse.Namespace, host: str, port: int,
    phase: str, phase_seed: int,
) -> Dict[str, Any]:
    stats = PhaseStats(phase)
    points = make_points(args)
    plan = plan_requests(args, phase_seed)
    queue: "asyncio.Queue[int]" = asyncio.Queue()
    for key_index in plan:
        queue.put_nowait(key_index)

    async def one_client(client_index: int) -> None:
        # string seed: deterministic across processes (tuple seeds rely
        # on hash(), which PYTHONHASHSEED randomizes)
        rng = random.Random(f"{phase_seed}:think:{client_index}")
        async with AsyncServiceClient(host, port) as client:
            while True:
                try:
                    key_index = queue.get_nowait()
                except asyncio.QueueEmpty:
                    return
                await _timed_route(
                    client, request_from_point(points[key_index]), stats
                )
                if args.think_ms > 0:
                    await asyncio.sleep(
                        rng.expovariate(1.0 / (args.think_ms / 1e3))
                    )

    t0 = time.perf_counter()
    await asyncio.gather(*(one_client(i) for i in range(args.clients)))
    stats.wall_s = time.perf_counter() - t0
    return stats.summary()


async def run_open_loop(
    args: argparse.Namespace, host: str, port: int,
    phase: str, phase_seed: int,
) -> Dict[str, Any]:
    stats = PhaseStats(phase)
    points = make_points(args)
    plan = plan_requests(args, phase_seed)
    rng = random.Random(f"{phase_seed}:arrivals")
    tasks: List["asyncio.Task[None]"] = []

    async def fire(key_index: int) -> None:
        async with AsyncServiceClient(host, port) as client:
            await _timed_route(
                client, request_from_point(points[key_index]), stats
            )

    t0 = time.perf_counter()
    for i, key_index in enumerate(plan):
        if args.ramp:
            # linear ramp: instantaneous rate grows with progress
            progress = (i + 1) / len(plan)
            rate = max(args.rps * progress, 0.1)
        else:
            rate = args.rps
        await asyncio.sleep(rng.expovariate(rate))
        tasks.append(asyncio.ensure_future(fire(key_index)))
    await asyncio.gather(*tasks)
    stats.wall_s = time.perf_counter() - t0
    return stats.summary()


async def drive(args: argparse.Namespace, host: str, port: int) -> Dict[str, Any]:
    phases: List[Dict[str, Any]] = []
    if args.burst > 0:
        phases.append(await run_burst(args, host, port))
    runner = run_open_loop if args.open else run_closed_loop
    phases.append(await runner(args, host, port, "cold", args.seed * 7919 + 1))
    if not args.skip_warm:
        # same seeded stream: the warm phase replays the cold keys
        phases.append(
            await runner(args, host, port, "warm", args.seed * 7919 + 1)
        )
    # pull the service's own counters for the report
    async with AsyncServiceClient(host, port) as client:
        _, stats_body = await client.stats()
    return {"phases": phases, "service": stats_body}


def render_report(report: Dict[str, Any]) -> str:
    lines = [
        f"{'phase':<8} {'reqs':>5} {'wall_s':>7} {'rps':>7} "
        f"{'p50_ms':>8} {'p95_ms':>8} {'p99_ms':>8} "
        f"{'coalesced':>9} {'cached':>6}  statuses"
    ]
    for ph in report["phases"]:
        lines.append(
            f"{ph['phase']:<8} {ph['requests']:>5} {ph['wall_s']:>7.3f} "
            f"{ph['throughput_rps']:>7.2f} {ph['p50_ms']:>8.2f} "
            f"{ph['p95_ms']:>8.2f} {ph['p99_ms']:>8.2f} "
            f"{ph['coalesced']:>9} {ph['cached']:>6}  {ph['statuses']}"
        )
    svc = report.get("service", {})
    if isinstance(svc, dict) and "requests" in svc:
        cache = svc.get("cache") or {}
        lines.append(
            f"service: requests={svc['requests']:.0f} "
            f"coalesced={svc['coalesced']:.0f} degraded={svc['degraded']:.0f} "
            f"cache_hits={cache.get('hits', 0)} cache_stores={cache.get('stores', 0)}"
        )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.keys < 1 or args.requests < 1 or args.clients < 1:
        print("keys, requests, and clients must all be >= 1", file=sys.stderr)
        return 1

    host_ctx: Optional[ServiceHost] = None
    tmp_ctx = None
    try:
        if args.inprocess:
            cache_dir = args.cache_dir
            if cache_dir is None:
                import tempfile

                tmp_ctx = tempfile.TemporaryDirectory(prefix="repro-loadtest-")
                cache_dir = tmp_ctx.name
            from repro.exec.cache import RunCache

            service = RoutingService(
                cache=RunCache(cache_dir),
                config=ServiceConfig(
                    workers=args.workers,
                    max_retries=1,
                    fault_plan=args.fault_plan,
                    fault_seed=args.seed,
                ),
            )
            host_ctx = ServiceHost(service).start()
            host, port = host_ctx.host, host_ctx.port
        else:
            if args.port == 0:
                print("--port is required without --inprocess", file=sys.stderr)
                return 1
            host, port = args.host, args.port

        report = asyncio.run(drive(args, host, port))
    finally:
        if host_ctx is not None:
            host_ctx.stop()
        if tmp_ctx is not None:
            tmp_ctx.cleanup()

    report["config"] = {
        "seed": args.seed, "circuit": args.circuit, "scale": args.scale,
        "keys": args.keys, "skew": args.skew,
        "mode": "open" if args.open else "closed",
        "clients": args.clients, "requests": args.requests,
        "think_ms": args.think_ms, "rps": args.rps if args.open else None,
        "ramp": args.ramp, "burst": args.burst,
        "inprocess": args.inprocess, "fault_plan": args.fault_plan or None,
    }
    print(render_report(report))

    if args.snapshot_out:
        with open(args.snapshot_out, "w") as fh:
            json.dump(REGISTRY.snapshot(), fh, indent=2)
        print(f"metrics snapshot written to {args.snapshot_out}")
    if args.json_out:
        with open(args.json_out, "w") as fh:
            json.dump(report, fh, indent=2)
        print(f"summary written to {args.json_out}")

    # a load test fails only when the service misbehaved: any 5xx in a
    # fault-free run, or zero completed requests
    total = sum(ph["requests"] for ph in report["phases"])
    if total == 0:
        return 1
    if not args.fault_plan:
        bad = sum(
            count
            for ph in report["phases"]
            for status, count in ph["statuses"].items()
            if int(status) >= 500
        )
        if bad:
            print(f"{bad} server-error responses in a fault-free run", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
