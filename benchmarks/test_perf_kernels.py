"""Host-performance benchmarks of the routing kernels.

Unlike the artifact benchmarks (one-shot regenerations of paper tables),
these measure real wall time over several rounds and serve as the
performance-regression harness for the library itself.
"""

import numpy as np
import pytest

from repro.circuits import mcnc
from repro.geometry import Interval, max_overlap
from repro.grid.channels import build_state
from repro.grid.coarse import CoarseGrid, Orientation
from repro.steiner import prim_mst
from repro.twgr import GlobalRouter, RouterConfig
from repro.twgr.coarse_step import coarse_route, collect_segments


@pytest.fixture(scope="module")
def circuit():
    return mcnc.generate("primary1", scale=0.3, seed=1)


@pytest.fixture(scope="module")
def routed(circuit):
    """A routed circuit plus a loaded grid consistent with its pool."""
    cfg = RouterConfig(seed=1)
    _result, art = GlobalRouter(cfg).route_with_artifacts(circuit)
    grid = CoarseGrid(
        ncols=art.grid.ncols, nrows=art.grid.nrows,
        col_width=art.grid.col_width, weights=cfg.weights,
    )
    pool = coarse_route(
        collect_segments(art.trees), grid, cfg.rng(2, 0), passes=cfg.coarse_passes
    )
    return art, grid, pool


def test_perf_serial_route(benchmark, circuit):
    router = GlobalRouter(RouterConfig(seed=1))
    result = benchmark(router.route, circuit)
    assert result.total_tracks > 0


def test_perf_eval_cost(benchmark, routed):
    """L-shape cost of both orientations of every diagonal segment."""
    _art, grid, pool = routed
    routes = []
    for ps in pool:
        if not ps.seg.is_flat:
            routes.append(grid.route_for(ps.net, ps.seg, Orientation.VERT_AT_LOW))
            routes.append(grid.route_for(ps.net, ps.seg, Orientation.VERT_AT_HIGH))

    def run():
        acc = 0.0
        for r in routes:
            acc += grid.eval_cost(r)
        return acc

    assert benchmark(run) > 0


def test_perf_add_remove_route(benchmark, routed):
    """Rip-up + recommit of every committed route (net state unchanged)."""
    _art, grid, pool = routed
    committed = [ps.route for ps in pool]

    def run():
        for r in committed:
            grid.remove_route(r)
            grid.add_route(r)

    benchmark(run)
    assert grid.total_feed_demand() > 0


def test_perf_flip_gain(benchmark, routed):
    """Flip-gain evaluation of every switchable span (state unchanged)."""
    art, _grid, _pool = routed
    state = build_state(art.spans, 0, max(s.channel for s in art.spans))
    switchable = [s for s in art.spans if s.switchable]
    assert switchable

    def run():
        acc = 0
        for s in switchable:
            acc += state.flip_gain(s)
        return acc

    benchmark(run)


def test_perf_prim_mst_200_terminals(benchmark):
    rng = np.random.default_rng(0)
    coords = rng.integers(0, 2000, size=(200, 2))
    edges = benchmark(prim_mst, coords)
    assert len(edges) == 199


def test_perf_density_sweep(benchmark):
    rng = np.random.default_rng(0)
    ivs = [
        Interval.spanning(int(a), int(b))
        for a, b in rng.integers(0, 5000, size=(2000, 2))
    ]
    depth = benchmark(max_overlap, ivs)
    assert depth > 0


def test_perf_circuit_generation(benchmark):
    c = benchmark(mcnc.generate, "primary1", 0.3, 7)
    assert c.stats().num_nets > 0


def test_perf_parallel_route_4(benchmark, circuit):
    from repro.parallel import route_parallel

    config = RouterConfig(seed=1)
    run = benchmark.pedantic(
        route_parallel,
        args=(circuit,),
        kwargs={"algorithm": "hybrid", "nprocs": 4, "config": config,
                "compute_baseline": False},
        rounds=3,
        iterations=1,
    )
    assert run.result.total_tracks > 0
