"""Host-performance benchmarks of the routing kernels.

Unlike the artifact benchmarks (one-shot regenerations of paper tables),
these measure real wall time over several rounds and serve as the
performance-regression harness for the library itself.
"""

import numpy as np
import pytest

from repro.circuits import mcnc
from repro.geometry import Interval, max_overlap
from repro.steiner import prim_mst
from repro.twgr import GlobalRouter, RouterConfig


@pytest.fixture(scope="module")
def circuit():
    return mcnc.generate("primary1", scale=0.3, seed=1)


def test_perf_serial_route(benchmark, circuit):
    router = GlobalRouter(RouterConfig(seed=1))
    result = benchmark(router.route, circuit)
    assert result.total_tracks > 0


def test_perf_prim_mst_200_terminals(benchmark):
    rng = np.random.default_rng(0)
    coords = rng.integers(0, 2000, size=(200, 2))
    edges = benchmark(prim_mst, coords)
    assert len(edges) == 199


def test_perf_density_sweep(benchmark):
    rng = np.random.default_rng(0)
    ivs = [
        Interval.spanning(int(a), int(b))
        for a, b in rng.integers(0, 5000, size=(2000, 2))
    ]
    depth = benchmark(max_overlap, ivs)
    assert depth > 0


def test_perf_circuit_generation(benchmark):
    c = benchmark(mcnc.generate, "primary1", 0.3, 7)
    assert c.stats().num_nets > 0


def test_perf_parallel_route_4(benchmark, circuit):
    from repro.parallel import route_parallel

    config = RouterConfig(seed=1)
    run = benchmark.pedantic(
        route_parallel,
        args=(circuit,),
        kwargs={"algorithm": "hybrid", "nprocs": 4, "config": config,
                "compute_baseline": False},
        rounds=3,
        iterations=1,
    )
    assert run.result.total_tracks > 0
