"""Shared settings for the reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper's evaluation
section and prints it (run pytest with ``-s`` to see them inline; they
are also asserted structurally).  The circuits are scaled instances of
the MCNC-like suite — EXPERIMENTS.md records the scale — and the whole
suite shares one memoized sweep cache, so figure benchmarks reuse their
table counterparts' routing runs.
"""

import pytest

from repro.analysis.experiments import ExperimentSettings

#: scale used by every shipped benchmark artifact
BENCH_SCALE = 0.2
BENCH_SEED = 1

BENCH_SETTINGS = ExperimentSettings(scale=BENCH_SCALE, seed=BENCH_SEED, procs=(1, 2, 4, 8))


@pytest.fixture(scope="session")
def settings():
    return BENCH_SETTINGS


@pytest.fixture(scope="session")
def emit():
    """Print an artifact so it lands in the benchmark log."""

    def _emit(text: str) -> None:
        print("\n" + text + "\n")

    return _emit
