"""Paper Table 2 — scaled track results of the row-wise pin partition
algorithm.

Expected shape (paper §7.1): quality degrades mildly with processor
count — about 5 % worse track counts on 8 processors on average — while
the 1-processor column is exactly 1.000.
"""

from repro.analysis.experiments import run_quality_table


def test_table2_rowwise_scaled_tracks(benchmark, settings, emit):
    table, runs = benchmark.pedantic(
        run_quality_table, args=("rowwise", settings), rounds=1, iterations=1
    )
    emit(table.render())

    one = table.column("1 proc")
    assert all(abs(v - 1.0) < 1e-9 for v in one)

    avg = table.rows[-1]
    avg8 = avg[-1]
    # paper: ~5% average degradation on 8 processors
    assert 1.0 <= avg8 < 1.15, f"rowwise avg scaled tracks @8 = {avg8}"
    # degradation grows with processor count
    assert avg[1] <= avg[2] + 0.02 <= avg[3] + 0.04
