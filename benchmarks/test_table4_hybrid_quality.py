"""Paper Table 4 — scaled track results of the hybrid pin partition
algorithm.

Expected shape (paper §7.3/§8): "the hybrid pin partitioned routing
algorithm obtains the best quality control (average quality is ~2-3%
worse on 8 processors)".
"""

from repro.analysis.experiments import run_quality_table


def test_table4_hybrid_scaled_tracks(benchmark, settings, emit):
    table, runs = benchmark.pedantic(
        run_quality_table, args=("hybrid", settings), rounds=1, iterations=1
    )
    emit(table.render())

    one = table.column("1 proc")
    assert all(abs(v - 1.0) < 1e-9 for v in one)

    avg8 = table.rows[-1][-1]
    assert avg8 < 1.06, f"hybrid avg scaled tracks @8 = {avg8}"

    # best quality of the three parallel algorithms
    rw, _ = run_quality_table("rowwise", settings)
    nw, _ = run_quality_table("netwise", settings)
    assert avg8 <= rw.rows[-1][-1]
    assert avg8 <= nw.rows[-1][-1]
