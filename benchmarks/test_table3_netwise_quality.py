"""Paper Table 3 — scaled track results of the net-wise pin partition
algorithm.

Expected shape (paper §7.2): "significant degradation in quality" — the
worst of the three algorithms, caused by the blindness of each processor
during switchable-segment optimization under affordable (scalar-only)
synchronization.
"""

from repro.analysis.experiments import run_quality_table


def test_table3_netwise_scaled_tracks(benchmark, settings, emit):
    table, runs = benchmark.pedantic(
        run_quality_table, args=("netwise", settings), rounds=1, iterations=1
    )
    emit(table.render())

    one = table.column("1 proc")
    assert all(abs(v - 1.0) < 1e-9 for v in one)

    avg8 = table.rows[-1][-1]
    # clearly degraded (the paper reports low-teens percent average)
    assert avg8 > 1.02, f"netwise avg scaled tracks @8 = {avg8}"

    # worst of the three algorithms at 8 processors
    rw, _ = run_quality_table("rowwise", settings)
    hy, _ = run_quality_table("hybrid", settings)
    assert avg8 >= rw.rows[-1][-1]
    assert avg8 >= hy.rows[-1][-1]
