"""Paper Table 5 — the hybrid algorithm across platforms.

Reproduces the cross-platform comparison: the Sun SparcCenter 1000 SMP
versus the Intel Paragon DMP.  Expected shape: similar scaled quality on
both platforms (the algorithm is platform-independent), lower
per-processor efficiency on the Paragon (slower nodes, pricier
messages), more usable processors on the Paragon, and serial "timeout"
entries for the circuits whose full-scale footprint exceeds a 32 MB
Paragon node — their speedups are starred and assumed proportional, as
in the paper.
"""

from repro.analysis.experiments import run_platform_table

PLATFORMS = (
    ("SparcCenter-1000", (1, 4, 8)),
    ("Intel-Paragon", (1, 4, 16)),
)


def test_table5_hybrid_across_platforms(benchmark, settings, emit):
    table, runs = benchmark.pedantic(
        run_platform_table,
        args=(settings,),
        kwargs={"platforms": PLATFORMS},
        rounds=1,
        iterations=1,
    )
    emit(table.render())

    rows = {(r[0], r[1], r[2]): r[3:] for r in table.rows}

    # serial timeouts on the Paragon for the biggest circuits
    paragon_serial_times = rows[("Intel-Paragon", 1, "time (s)")]
    assert "timeout" in paragon_serial_times
    assert paragon_serial_times[0] != "timeout"  # primary2 fits

    # starred (assumed-proportional) speedups accompany the timeouts
    paragon_speedups = rows[("Intel-Paragon", 16, "speedup")]
    assert any(isinstance(s, str) and s.endswith("*") for s in paragon_speedups)

    # no timeout on the SMP
    assert "timeout" not in rows[("SparcCenter-1000", 1, "time (s)")]

    # scaled quality comparable across platforms (same algorithm/decisions)
    smp_q = rows[("SparcCenter-1000", 4, "scaled tracks")]
    dmp_q = rows[("Intel-Paragon", 4, "scaled tracks")]
    assert smp_q == dmp_q

    # modeled runtimes: Paragon nodes are slower per processor
    smp_t4 = rows[("SparcCenter-1000", 4, "time (s)")]
    dmp_t4 = rows[("Intel-Paragon", 4, "time (s)")]
    assert all(d > s for s, d in zip(smp_t4, dmp_t4))

    # area degradation milder than track degradation (paper §7.1 note)
    smp_area = rows[("SparcCenter-1000", 8, "scaled area")]
    smp_tracks = rows[("SparcCenter-1000", 8, "scaled tracks")]
    avg_area = sum(smp_area) / len(smp_area)
    avg_tracks = sum(smp_tracks) / len(smp_tracks)
    assert avg_area <= avg_tracks + 0.01
