#!/usr/bin/env python
"""Deterministic step-time regression gate.

Routes a fixed smoke spec (``primary1`` at scale 0.1, serial and hybrid
p=4) under *both* congestion backends (``python`` and ``numpy``),
condenses each run into a :class:`~repro.obs.profile.RunProfile`, and
diffs the *modeled* per-step seconds against the committed reference
``benchmarks/PROFILE_smoke.json``.  Modeled seconds are derived from the
work counters via the machine model, so they are bit-deterministic for a
fixed spec: a diff ratio other than exactly 1.0 means a code change
altered how much work a step performs — the same property the cache's
``CODE_SALT`` invalidation rule tracks.  Because the backends are
bit-identical by contract (same routes, same work charges), one reference
gates both: any backend whose modeled step times drift from it — or from
the other backend's — fails the gate.  Exits nonzero when any step
regressed by more than the threshold (default +25%).

It also loads the committed benchmark records ``BENCH_kernels.json`` and
``BENCH_sweep.json`` (repo root) as context: the kernel means are printed
for reference and the sweep record's ``bit_identical`` flag is enforced —
a historical sweep that was not bit-identical would mean the committed
baseline itself is untrustworthy.

Usage::

    PYTHONPATH=src python benchmarks/check_regression.py            # gate
    PYTHONPATH=src python benchmarks/check_regression.py --update   # rebase
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional

REPO = Path(__file__).resolve().parent.parent
DEFAULT_REFERENCE = Path(__file__).resolve().parent / "PROFILE_smoke.json"

SMOKE_FORMAT = "repro-profile-smoke-v1"
SMOKE_CIRCUIT = "primary1"
SMOKE_SCALE = 0.1
SMOKE_SEED = 1
SMOKE_MACHINE = "SparcCenter-1000"
#: label -> (algorithm, nprocs); both legs of the gate
SMOKE_RUNS = {
    "serial": ("serial", 1),
    "hybrid_p4": ("hybrid", 4),
}

#: every congestion backend the gate must hold for
SMOKE_BACKENDS = ("python", "numpy")


def smoke_profiles(backend: str) -> Dict[str, Dict]:
    """Route the smoke specs under ``backend``; ``label -> profile dict``."""
    from repro.exec import SweepPoint, execute_point
    from repro.twgr.config import RouterConfig

    out: Dict[str, Dict] = {}
    for label, (algorithm, nprocs) in SMOKE_RUNS.items():
        point = SweepPoint(
            circuit=SMOKE_CIRCUIT, algorithm=algorithm, nprocs=nprocs,
            scale=SMOKE_SCALE, circuit_seed=SMOKE_SEED, machine=SMOKE_MACHINE,
            config=RouterConfig(seed=SMOKE_SEED, backend=backend),
        )
        record = execute_point(point, compute_baseline=False)
        assert record.profile is not None
        out[label] = record.profile
    return out


def load_reference(path: Path) -> Dict[str, Dict]:
    data = json.loads(path.read_text(encoding="utf-8"))
    if data.get("format") != SMOKE_FORMAT:
        raise ValueError(f"{path} is not a smoke-profile reference")
    return data["profiles"]


def check_bench_records(kernels_path: Path, sweep_path: Path) -> List[str]:
    """Sanity-check the committed benchmark records; returns problems."""
    problems: List[str] = []
    try:
        kernels = json.loads(kernels_path.read_text(encoding="utf-8"))
        names = sorted(kernels.get("kernels", {}))
        print(f"kernel baseline ({kernels_path.name}, commit {kernels.get('commit', '?')[:12]}):")
        for name in names:
            k = kernels["kernels"][name]
            print(f"  {name:<28} {1e3 * k['mean_s']:9.3f} ms")
    except (OSError, ValueError) as exc:
        problems.append(f"cannot read {kernels_path}: {exc}")
    try:
        sweep = json.loads(sweep_path.read_text(encoding="utf-8"))
        identical = sweep.get("sweep", {}).get("bit_identical")
        print(
            f"sweep baseline ({sweep_path.name}): "
            f"{sweep.get('sweep', {}).get('points', '?')} points, "
            f"bit_identical={identical}"
        )
        if identical is not True:
            problems.append(
                f"{sweep_path.name}: committed sweep was not bit-identical"
            )
    except (OSError, ValueError) as exc:
        problems.append(f"cannot read {sweep_path}: {exc}")
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--reference", default=str(DEFAULT_REFERENCE))
    ap.add_argument(
        "--threshold", type=float, default=0.25,
        help="per-step regression threshold (fraction, default 0.25)",
    )
    ap.add_argument(
        "--update", action="store_true",
        help="rewrite the reference from the current code instead of gating",
    )
    ap.add_argument("--kernels", default=str(REPO / "BENCH_kernels.json"))
    ap.add_argument("--sweep", default=str(REPO / "BENCH_sweep.json"))
    ap.add_argument(
        "--skip-bench-files", action="store_true",
        help="gate on the smoke profile only (no BENCH_*.json checks)",
    )
    args = ap.parse_args(argv)

    sys.path.insert(0, str(REPO / "src"))
    from repro.obs.profile import RunProfile, profile_diff

    fresh = {b: smoke_profiles(b) for b in SMOKE_BACKENDS}

    if args.update:
        # the reference is written from the default (numpy) backend; the
        # python backend gates against the same file because modeled
        # seconds are backend-independent by the bit-identity contract
        payload = {"format": SMOKE_FORMAT, "profiles": fresh["numpy"]}
        Path(args.reference).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"reference rewritten: {args.reference}")
        return 0

    problems: List[str] = []
    if not args.skip_bench_files:
        problems += check_bench_records(Path(args.kernels), Path(args.sweep))

    # cross-backend bit-identity: every step's modeled seconds must agree
    # exactly between the two backends before either is gated
    for label in SMOKE_RUNS:
        profs = {b: RunProfile.from_dict(fresh[b][label]) for b in SMOKE_BACKENDS}
        a, b = SMOKE_BACKENDS
        steps_a = {s: profs[a].step_seconds(s) for s in profs[a].ordered_steps()}
        steps_b = {s: profs[b].step_seconds(s) for s in profs[b].ordered_steps()}
        if steps_a != steps_b:
            drift = sorted(
                s for s in set(steps_a) | set(steps_b)
                if steps_a.get(s) != steps_b.get(s)
            )
            problems.append(
                f"{label}: backends {a}/{b} disagree on modeled step time(s): "
                + ", ".join(drift)
            )
        else:
            print(f"smoke run {label}: {a} and {b} backends bit-identical")

    reference = load_reference(Path(args.reference))
    for backend in SMOKE_BACKENDS:
        for label, old_dict in reference.items():
            if label not in fresh[backend]:
                problems.append(f"reference run {label!r} missing from smoke set")
                continue
            old = RunProfile.from_dict(old_dict)
            new = RunProfile.from_dict(fresh[backend][label])
            diff = profile_diff(old, new, threshold=args.threshold)
            print(f"\nsmoke run {label} ({old.circuit}@{old.scale:g}) [{backend}]:")
            print(diff.render())
            if not diff.ok:
                problems.append(
                    f"{label} [{backend}]: steps regressed beyond "
                    f"+{args.threshold:.0%}: "
                    + ", ".join(d.step for d in diff.regressions)
                )

    if problems:
        print("\nREGRESSION CHECK FAILED:")
        for p in problems:
            print(f"  - {p}")
        return 1
    print("\nregression check passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
