#!/usr/bin/env python
"""Deterministic step-time regression gate.

Routes a fixed smoke spec (``primary1`` at scale 0.1, serial and hybrid
p=4) under *both* congestion backends (``python`` and ``numpy``),
condenses each run into a :class:`~repro.obs.profile.RunProfile`, and
diffs the *modeled* per-step seconds against the committed reference
``benchmarks/PROFILE_smoke.json``.  Modeled seconds are derived from the
work counters via the machine model, so they are bit-deterministic for a
fixed spec: a diff ratio other than exactly 1.0 means a code change
altered how much work a step performs — the same property the cache's
``CODE_SALT`` invalidation rule tracks.  Because the backends are
bit-identical by contract (same routes, same work charges), one reference
gates both: any backend whose modeled step times drift from it — or from
the other backend's — fails the gate.  Exits nonzero when any step
regressed by more than the threshold (default +25%).

It also loads the committed benchmark records ``BENCH_kernels.json`` and
``BENCH_sweep.json`` (repo root) as context: the kernel means are printed
for reference and the sweep record's ``bit_identical`` flag is enforced —
a historical sweep that was not bit-identical would mean the committed
baseline itself is untrustworthy.

Finally it gates the committed perf trajectory ``BENCH_trajectory.json``
through the trend engine (:mod:`repro.analysis.trends`): records are
schema-validated fail-fast, grouped into per-backend comparable chains
(same scale/seed/rounds as the newest record), and **every adjacent
pair** in every chain is checked — route_mean_s beyond
``--route-threshold`` (default 5%) or any kernel mean beyond
``--kernel-threshold`` (default 30%, host-noise calibrated) fails with a
culprit report naming the kernel, backend, and both commits.  The newest
record of every backend must additionally carry the incremental-engine
observability stats (a ``batched_eval`` kernel mean and a per-circuit
``dirty_frac``).  This check reads committed records only — it never
times anything itself, so it cannot flake with runner speed; it fails
exactly when someone commits a measurably slower trajectory record,
even one buried behind a newer fast record.

Records stamped with a real-parallelism transport (``backend@transport``
chains, written by ``run_bench.py --transport-bench``) are *exempt* from
the hard gate: their route walls are measured host seconds, which vary
with the runner's core count and load, unlike the deterministic modeled
series gated here.  The trend engine still displays them, so a measured
slowdown is visible in ``repro trends`` without ever failing CI.

Usage::

    PYTHONPATH=src python benchmarks/check_regression.py            # gate
    PYTHONPATH=src python benchmarks/check_regression.py --update   # rebase
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional

REPO = Path(__file__).resolve().parent.parent
if str(REPO / "src") not in sys.path:  # direct function calls, not just main()
    sys.path.insert(0, str(REPO / "src"))
DEFAULT_REFERENCE = Path(__file__).resolve().parent / "PROFILE_smoke.json"

SMOKE_FORMAT = "repro-profile-smoke-v1"
SMOKE_CIRCUIT = "primary1"
SMOKE_SCALE = 0.1
SMOKE_SEED = 1
SMOKE_MACHINE = "SparcCenter-1000"
#: label -> (algorithm, nprocs); both legs of the gate
SMOKE_RUNS = {
    "serial": ("serial", 1),
    "hybrid_p4": ("hybrid", 4),
}

#: every congestion backend the gate must hold for
SMOKE_BACKENDS = ("python", "numpy")


def smoke_profiles(backend: str) -> Dict[str, Dict]:
    """Route the smoke specs under ``backend``; ``label -> profile dict``."""
    from repro.exec import SweepPoint, execute_point
    from repro.twgr.config import RouterConfig

    out: Dict[str, Dict] = {}
    for label, (algorithm, nprocs) in SMOKE_RUNS.items():
        point = SweepPoint(
            circuit=SMOKE_CIRCUIT, algorithm=algorithm, nprocs=nprocs,
            scale=SMOKE_SCALE, circuit_seed=SMOKE_SEED, machine=SMOKE_MACHINE,
            config=RouterConfig(seed=SMOKE_SEED, backend=backend),
        )
        record = execute_point(point, compute_baseline=False)
        assert record.profile is not None
        out[label] = record.profile
    return out


def load_reference(path: Path) -> Dict[str, Dict]:
    data = json.loads(path.read_text(encoding="utf-8"))
    if data.get("format") != SMOKE_FORMAT:
        raise ValueError(f"{path} is not a smoke-profile reference")
    return data["profiles"]


def check_bench_records(kernels_path: Path, sweep_path: Path) -> List[str]:
    """Sanity-check the committed benchmark records; returns problems.

    The kernel report loads through the versioned fail-fast validator
    (:func:`repro.analysis.records.load_kernels`), so a malformed record
    is reported naming the offending kernel/circuit instead of surfacing
    as a KeyError mid-gate.
    """
    from repro.analysis.records import BenchRecordError, load_kernels

    problems: List[str] = []
    try:
        kernels = load_kernels(kernels_path)
        print(f"kernel baseline ({kernels_path.name}, commit {kernels['commit'][:12]}):")
        for name in sorted(kernels["kernels"]):
            k = kernels["kernels"][name]
            print(f"  {name:<28} {1e3 * k['mean_s']:9.3f} ms")
    except (OSError, ValueError, BenchRecordError) as exc:
        problems.append(f"cannot read {kernels_path}: {exc}")
    try:
        sweep = json.loads(sweep_path.read_text(encoding="utf-8"))
        identical = sweep.get("sweep", {}).get("bit_identical")
        print(
            f"sweep baseline ({sweep_path.name}): "
            f"{sweep.get('sweep', {}).get('points', '?')} points, "
            f"bit_identical={identical}"
        )
        if identical is not True:
            problems.append(
                f"{sweep_path.name}: committed sweep was not bit-identical"
            )
    except (OSError, ValueError) as exc:
        problems.append(f"cannot read {sweep_path}: {exc}")
    return problems


#: kernel stats the newest trajectory record of each backend must carry
REQUIRED_KERNEL_STATS = ("batched_eval",)


def check_trajectory(
    path: Path,
    route_threshold: float,
    kernel_threshold: Optional[float] = None,
) -> List[str]:
    """Trend-aware gate over the committed perf-trajectory; returns problems.

    Delegates to :mod:`repro.analysis.trends`: records load through the
    versioned fail-fast validator, are grouped into per-backend chains of
    records comparable with the newest one (same scale/seed/rounds — wall
    timings at different operating points are not comparable), and every
    *adjacent pair* in every chain is checked, so a regression hidden in
    the middle of history still fails.  Route means are gated at
    ``route_threshold``, kernel means at ``kernel_threshold`` (default
    :data:`repro.analysis.trends.KERNEL_THRESHOLD`).  The newest record
    per backend must carry every :data:`REQUIRED_KERNEL_STATS` kernel
    mean and a numeric per-circuit ``dirty_frac``.  Records written
    before the backend stamp existed predate the gated stats and are
    displayed but exempt, as are measured-transport chains
    (``backend@transport``): wall-clock series are trend-reported, never
    hard-gated.
    """
    from repro.analysis.records import load_trajectory
    from repro.analysis import trends

    if kernel_threshold is None:
        kernel_threshold = trends.KERNEL_THRESHOLD
    try:
        records = load_trajectory(path)
    except FileNotFoundError:
        return [f"cannot read {path}: file not found"]
    except (OSError, ValueError) as exc:  # BenchRecordError is a ValueError
        return [f"cannot read {path}: {exc}"]
    if not records:
        return [f"{path.name}: no trajectory records committed"]
    report = trends.build_trend_report(records)
    problems, _culprits = trends.gate_trends(
        report,
        kernel_threshold=kernel_threshold,
        route_threshold=route_threshold,
        required_kernels=REQUIRED_KERNEL_STATS,
    )
    print(trends.render_text(report, problems=problems))
    return [f"{path.name}: {p}" for p in problems]


def main(argv: Optional[List[str]] = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--reference", default=str(DEFAULT_REFERENCE))
    ap.add_argument(
        "--threshold", type=float, default=0.25,
        help="per-step regression threshold (fraction, default 0.25)",
    )
    ap.add_argument(
        "--update", action="store_true",
        help="rewrite the reference from the current code instead of gating",
    )
    ap.add_argument("--kernels", default=str(REPO / "BENCH_kernels.json"))
    ap.add_argument("--sweep", default=str(REPO / "BENCH_sweep.json"))
    ap.add_argument("--trajectory", default=str(REPO / "BENCH_trajectory.json"))
    ap.add_argument(
        "--route-threshold", type=float, default=0.05,
        help="route_mean_s regression threshold between adjacent committed "
        "trajectory records (fraction, default 0.05)",
    )
    ap.add_argument(
        "--kernel-threshold", type=float, default=None,
        help="per-kernel mean_s regression threshold between adjacent "
        "committed trajectory records (fraction; default "
        "repro.analysis.trends.KERNEL_THRESHOLD = 0.30, host-noise "
        "calibrated)",
    )
    ap.add_argument(
        "--skip-bench-files", action="store_true",
        help="gate on the smoke profile only (no BENCH_*.json checks)",
    )
    args = ap.parse_args(argv)

    from repro.obs.profile import RunProfile, profile_diff

    fresh = {b: smoke_profiles(b) for b in SMOKE_BACKENDS}

    if args.update:
        # the reference is written from the default (numpy) backend; the
        # python backend gates against the same file because modeled
        # seconds are backend-independent by the bit-identity contract
        payload = {"format": SMOKE_FORMAT, "profiles": fresh["numpy"]}
        Path(args.reference).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"reference rewritten: {args.reference}")
        return 0

    problems: List[str] = []
    if not args.skip_bench_files:
        problems += check_bench_records(Path(args.kernels), Path(args.sweep))
        problems += check_trajectory(
            Path(args.trajectory), args.route_threshold, args.kernel_threshold
        )

    # cross-backend bit-identity: every step's modeled seconds must agree
    # exactly between the two backends before either is gated
    for label in SMOKE_RUNS:
        profs = {b: RunProfile.from_dict(fresh[b][label]) for b in SMOKE_BACKENDS}
        a, b = SMOKE_BACKENDS
        steps_a = {s: profs[a].step_seconds(s) for s in profs[a].ordered_steps()}
        steps_b = {s: profs[b].step_seconds(s) for s in profs[b].ordered_steps()}
        if steps_a != steps_b:
            drift = sorted(
                s for s in set(steps_a) | set(steps_b)
                if steps_a.get(s) != steps_b.get(s)
            )
            problems.append(
                f"{label}: backends {a}/{b} disagree on modeled step time(s): "
                + ", ".join(drift)
            )
        else:
            print(f"smoke run {label}: {a} and {b} backends bit-identical")

    reference = load_reference(Path(args.reference))
    for backend in SMOKE_BACKENDS:
        for label, old_dict in reference.items():
            if label not in fresh[backend]:
                problems.append(f"reference run {label!r} missing from smoke set")
                continue
            old = RunProfile.from_dict(old_dict)
            new = RunProfile.from_dict(fresh[backend][label])
            diff = profile_diff(old, new, threshold=args.threshold)
            print(f"\nsmoke run {label} ({old.circuit}@{old.scale:g}) [{backend}]:")
            print(diff.render())
            if not diff.ok:
                problems.append(
                    f"{label} [{backend}]: steps regressed beyond "
                    f"+{args.threshold:.0%}: "
                    + ", ".join(d.step for d in diff.regressions)
                )

    if problems:
        print("\nREGRESSION CHECK FAILED:")
        for p in problems:
            print(f"  - {p}")
        return 1
    print("\nregression check passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
