#!/usr/bin/env python
"""Deterministic step-time regression gate.

Routes a fixed smoke spec (``primary1`` at scale 0.1, serial and hybrid
p=4) under *both* congestion backends (``python`` and ``numpy``),
condenses each run into a :class:`~repro.obs.profile.RunProfile`, and
diffs the *modeled* per-step seconds against the committed reference
``benchmarks/PROFILE_smoke.json``.  Modeled seconds are derived from the
work counters via the machine model, so they are bit-deterministic for a
fixed spec: a diff ratio other than exactly 1.0 means a code change
altered how much work a step performs — the same property the cache's
``CODE_SALT`` invalidation rule tracks.  Because the backends are
bit-identical by contract (same routes, same work charges), one reference
gates both: any backend whose modeled step times drift from it — or from
the other backend's — fails the gate.  Exits nonzero when any step
regressed by more than the threshold (default +25%).

It also loads the committed benchmark records ``BENCH_kernels.json`` and
``BENCH_sweep.json`` (repo root) as context: the kernel means are printed
for reference and the sweep record's ``bit_identical`` flag is enforced —
a historical sweep that was not bit-identical would mean the committed
baseline itself is untrustworthy.

Finally it gates the committed perf trajectory ``BENCH_trajectory.json``:
the newest record of every backend must carry the incremental-engine
observability stats (a ``batched_eval`` kernel mean and a per-circuit
``dirty_frac``), and its end-to-end ``route_mean_s`` must not be more
than ``--route-threshold`` (default 5%) slower than the previous
committed record of the *same* backend at the same scale/seed.  This
check reads committed records only — it never times anything itself, so
it cannot flake with runner speed; it fails exactly when someone commits
a measurably slower trajectory record.

Usage::

    PYTHONPATH=src python benchmarks/check_regression.py            # gate
    PYTHONPATH=src python benchmarks/check_regression.py --update   # rebase
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional

REPO = Path(__file__).resolve().parent.parent
DEFAULT_REFERENCE = Path(__file__).resolve().parent / "PROFILE_smoke.json"

SMOKE_FORMAT = "repro-profile-smoke-v1"
SMOKE_CIRCUIT = "primary1"
SMOKE_SCALE = 0.1
SMOKE_SEED = 1
SMOKE_MACHINE = "SparcCenter-1000"
#: label -> (algorithm, nprocs); both legs of the gate
SMOKE_RUNS = {
    "serial": ("serial", 1),
    "hybrid_p4": ("hybrid", 4),
}

#: every congestion backend the gate must hold for
SMOKE_BACKENDS = ("python", "numpy")


def smoke_profiles(backend: str) -> Dict[str, Dict]:
    """Route the smoke specs under ``backend``; ``label -> profile dict``."""
    from repro.exec import SweepPoint, execute_point
    from repro.twgr.config import RouterConfig

    out: Dict[str, Dict] = {}
    for label, (algorithm, nprocs) in SMOKE_RUNS.items():
        point = SweepPoint(
            circuit=SMOKE_CIRCUIT, algorithm=algorithm, nprocs=nprocs,
            scale=SMOKE_SCALE, circuit_seed=SMOKE_SEED, machine=SMOKE_MACHINE,
            config=RouterConfig(seed=SMOKE_SEED, backend=backend),
        )
        record = execute_point(point, compute_baseline=False)
        assert record.profile is not None
        out[label] = record.profile
    return out


def load_reference(path: Path) -> Dict[str, Dict]:
    data = json.loads(path.read_text(encoding="utf-8"))
    if data.get("format") != SMOKE_FORMAT:
        raise ValueError(f"{path} is not a smoke-profile reference")
    return data["profiles"]


def check_bench_records(kernels_path: Path, sweep_path: Path) -> List[str]:
    """Sanity-check the committed benchmark records; returns problems."""
    problems: List[str] = []
    try:
        kernels = json.loads(kernels_path.read_text(encoding="utf-8"))
        names = sorted(kernels.get("kernels", {}))
        print(f"kernel baseline ({kernels_path.name}, commit {kernels.get('commit', '?')[:12]}):")
        for name in names:
            k = kernels["kernels"][name]
            print(f"  {name:<28} {1e3 * k['mean_s']:9.3f} ms")
    except (OSError, ValueError) as exc:
        problems.append(f"cannot read {kernels_path}: {exc}")
    try:
        sweep = json.loads(sweep_path.read_text(encoding="utf-8"))
        identical = sweep.get("sweep", {}).get("bit_identical")
        print(
            f"sweep baseline ({sweep_path.name}): "
            f"{sweep.get('sweep', {}).get('points', '?')} points, "
            f"bit_identical={identical}"
        )
        if identical is not True:
            problems.append(
                f"{sweep_path.name}: committed sweep was not bit-identical"
            )
    except (OSError, ValueError) as exc:
        problems.append(f"cannot read {sweep_path}: {exc}")
    return problems


#: kernel stats the newest trajectory record of each backend must carry
REQUIRED_KERNEL_STATS = ("batched_eval",)


def check_trajectory(path: Path, route_threshold: float) -> List[str]:
    """Gate the committed perf-trajectory records; returns problems.

    Per backend present in the file: the newest record must have every
    :data:`REQUIRED_KERNEL_STATS` kernel mean and a numeric ``dirty_frac``
    for every circuit, and may not regress ``route_mean_s`` by more than
    ``route_threshold`` against the previous comparable record (same
    backend, scale, seed, and rounds — wall timings at different operating
    points are not comparable).  Records written before the backend stamp
    existed carry no ``backend`` key; they predate the gated stats and are
    excluded rather than failed retroactively.
    """
    problems: List[str] = []
    try:
        records = json.loads(path.read_text(encoding="utf-8")).get("records", [])
    except (OSError, ValueError) as exc:
        return [f"cannot read {path}: {exc}"]
    legacy = sum(1 for rec in records if "backend" not in rec)
    if legacy:
        print(f"trajectory {path.name}: {legacy} legacy record(s) without a "
              f"backend stamp excluded from the gate")
    by_backend: Dict[str, List[Dict]] = {}
    for rec in records:
        if "backend" not in rec:
            continue
        by_backend.setdefault(rec.get("backend", ""), []).append(rec)
    if not by_backend:
        return [f"{path.name}: no trajectory records committed"]
    for backend, recs in sorted(by_backend.items()):
        latest = recs[-1]  # records are ordered oldest-first
        tag = f"{path.name} [{backend or 'unset'}]"
        for stat in REQUIRED_KERNEL_STATS:
            if stat not in latest.get("kernels_mean_s", {}):
                problems.append(f"{tag}: newest record lacks kernel stat {stat!r}")
        for name, c in latest.get("circuits", {}).items():
            if not isinstance(c.get("dirty_frac"), (int, float)):
                problems.append(
                    f"{tag}: newest record lacks dirty_frac for {name!r}"
                )
        key = (latest.get("scale"), latest.get("seed"), latest.get("rounds"))
        prev = next(
            (
                r for r in reversed(recs[:-1])
                if (r.get("scale"), r.get("seed"), r.get("rounds")) == key
            ),
            None,
        )
        if prev is None:
            print(f"trajectory {tag}: no previous comparable record (gate skipped)")
            continue
        for name, c in latest.get("circuits", {}).items():
            old = prev.get("circuits", {}).get(name, {}).get("route_mean_s")
            new = c.get("route_mean_s")
            if not old or not new:
                continue
            ratio = new / old
            marker = "REGRESSED" if ratio > 1.0 + route_threshold else "ok"
            print(
                f"trajectory {tag} {name}: route_mean_s "
                f"{1e3 * old:.1f} -> {1e3 * new:.1f} ms ({ratio:.3f}x) {marker}"
            )
            if ratio > 1.0 + route_threshold:
                problems.append(
                    f"{tag}: {name} route_mean_s regressed {ratio:.3f}x "
                    f"(> +{route_threshold:.0%}) vs commit "
                    f"{str(prev.get('commit'))[:12]}"
                )
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--reference", default=str(DEFAULT_REFERENCE))
    ap.add_argument(
        "--threshold", type=float, default=0.25,
        help="per-step regression threshold (fraction, default 0.25)",
    )
    ap.add_argument(
        "--update", action="store_true",
        help="rewrite the reference from the current code instead of gating",
    )
    ap.add_argument("--kernels", default=str(REPO / "BENCH_kernels.json"))
    ap.add_argument("--sweep", default=str(REPO / "BENCH_sweep.json"))
    ap.add_argument("--trajectory", default=str(REPO / "BENCH_trajectory.json"))
    ap.add_argument(
        "--route-threshold", type=float, default=0.05,
        help="route_mean_s regression threshold between committed "
        "trajectory records (fraction, default 0.05)",
    )
    ap.add_argument(
        "--skip-bench-files", action="store_true",
        help="gate on the smoke profile only (no BENCH_*.json checks)",
    )
    args = ap.parse_args(argv)

    sys.path.insert(0, str(REPO / "src"))
    from repro.obs.profile import RunProfile, profile_diff

    fresh = {b: smoke_profiles(b) for b in SMOKE_BACKENDS}

    if args.update:
        # the reference is written from the default (numpy) backend; the
        # python backend gates against the same file because modeled
        # seconds are backend-independent by the bit-identity contract
        payload = {"format": SMOKE_FORMAT, "profiles": fresh["numpy"]}
        Path(args.reference).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"reference rewritten: {args.reference}")
        return 0

    problems: List[str] = []
    if not args.skip_bench_files:
        problems += check_bench_records(Path(args.kernels), Path(args.sweep))
        problems += check_trajectory(Path(args.trajectory), args.route_threshold)

    # cross-backend bit-identity: every step's modeled seconds must agree
    # exactly between the two backends before either is gated
    for label in SMOKE_RUNS:
        profs = {b: RunProfile.from_dict(fresh[b][label]) for b in SMOKE_BACKENDS}
        a, b = SMOKE_BACKENDS
        steps_a = {s: profs[a].step_seconds(s) for s in profs[a].ordered_steps()}
        steps_b = {s: profs[b].step_seconds(s) for s in profs[b].ordered_steps()}
        if steps_a != steps_b:
            drift = sorted(
                s for s in set(steps_a) | set(steps_b)
                if steps_a.get(s) != steps_b.get(s)
            )
            problems.append(
                f"{label}: backends {a}/{b} disagree on modeled step time(s): "
                + ", ".join(drift)
            )
        else:
            print(f"smoke run {label}: {a} and {b} backends bit-identical")

    reference = load_reference(Path(args.reference))
    for backend in SMOKE_BACKENDS:
        for label, old_dict in reference.items():
            if label not in fresh[backend]:
                problems.append(f"reference run {label!r} missing from smoke set")
                continue
            old = RunProfile.from_dict(old_dict)
            new = RunProfile.from_dict(fresh[backend][label])
            diff = profile_diff(old, new, threshold=args.threshold)
            print(f"\nsmoke run {label} ({old.circuit}@{old.scale:g}) [{backend}]:")
            print(diff.render())
            if not diff.ok:
                problems.append(
                    f"{label} [{backend}]: steps regressed beyond "
                    f"+{args.threshold:.0%}: "
                    + ", ".join(d.step for d in diff.regressions)
                )

    if problems:
        print("\nREGRESSION CHECK FAILED:")
        for p in problems:
            print(f"  - {p}")
        return 1
    print("\nregression check passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
