"""Ablation A1 — the four §5 net-partition heuristics.

The paper proposes center, locus, density and pin-number-weight
partitions and settles on pin-number-weight for its experiments.  This
ablation compares all four on a biomed-like circuit (which carries a
clock net): the pin-number-weight scheme must balance Steiner work best.
"""

from repro.analysis.experiments import run_net_partition_ablation


def test_ablation_net_partition_heuristics(benchmark, settings, emit):
    table, runs = benchmark.pedantic(
        run_net_partition_ablation,
        args=(settings,),
        kwargs={"circuit_name": "biomed", "nprocs": 8},
        rounds=1,
        iterations=1,
    )
    emit(table.render())

    rows = {r[0]: r[1:] for r in table.rows}
    steiner_imb = {k: v[1] for k, v in rows.items()}
    assert steiner_imb["pin_weight"] <= min(steiner_imb.values()) + 1e-9
    # the clock net makes locality-driven schemes imbalance Steiner work
    assert steiner_imb["pin_weight"] < steiner_imb["center"]
    # all schemes produce a routable result
    assert all(v[2] is not None and v[2] > 0.8 for v in rows.values())
